// Unit tests for the page-differential machinery: the diff-trim scan, the
// region tracker, the on-media delta-record codec, and the shared DeltaRing
// — including a randomized differential proof that applying a chain onto
// its base image always reproduces the full page, across a million fuzzed
// byte edits with slot-reuse consolidation churning underneath.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/page_delta.h"
#include "core/delta_ring.h"
#include "fault/fault_injector.h"
#include "sim/sim_device.h"
#include "storage/page.h"
#include "tests/test_util.h"

namespace face {
namespace {

// ---------------------------------------------------------------------------
// ComputeDiffBounds: the word-wise trim must match a byte-wise scan exactly.

DiffBounds NaiveDiff(const char* before, const char* after, uint32_t len) {
  uint32_t lo = 0;
  while (lo < len && before[lo] == after[lo]) ++lo;
  uint32_t hi = len;
  while (hi > lo && before[hi - 1] == after[hi - 1]) --hi;
  return DiffBounds{lo, hi};
}

TEST(PageDeltaTest, DiffBoundsMatchByteScan) {
  std::mt19937_64 rng(20120827);
  std::string before(kPageSize, '\0');
  for (char& c : before) c = static_cast<char>(rng());
  for (int iter = 0; iter < 2000; ++iter) {
    std::string after = before;
    const uint32_t len =
        1 + static_cast<uint32_t>(rng() % kPageSize);
    // Flip up to three spans (possibly none: identical inputs).
    const int flips = static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      const uint32_t off = static_cast<uint32_t>(rng() % len);
      const uint32_t n =
          1 + static_cast<uint32_t>(rng() % std::min<uint32_t>(64, len - off));
      for (uint32_t i = 0; i < n; ++i) after[off + i] ^= 0x5a;
    }
    const DiffBounds fast = ComputeDiffBounds(before.data(), after.data(), len);
    const DiffBounds slow = NaiveDiff(before.data(), after.data(), len);
    ASSERT_EQ(fast.lo, slow.lo) << "len=" << len;
    ASSERT_EQ(fast.hi, slow.hi) << "len=" << len;
  }
}

// ---------------------------------------------------------------------------
// PageDeltaTracker: merge discipline and degradation.

TEST(PageDeltaTest, TrackerMergesOverlapsAndClampsHeader) {
  PageDeltaTracker t;
  t.Add(100, 10);
  t.Add(105, 10);  // overlaps -> one region [100, 115)
  ASSERT_EQ(t.region_count(), 1u);
  EXPECT_EQ(t.regions()[0].off, 100u);
  EXPECT_EQ(t.regions()[0].len, 15u);

  // Offsets inside the page header are clamped out: the header is
  // reconstructed at apply time.
  t.Reset();
  t.Add(0, kPageHeaderSize + 8);
  ASSERT_EQ(t.region_count(), 1u);
  EXPECT_EQ(t.regions()[0].off, kPageHeaderSize);
  EXPECT_EQ(t.regions()[0].len, 8u);

  // Overflow past kMaxDeltaRegions merges the closest pair instead of
  // dropping anything: coverage is a superset of the true diff.
  t.Reset();
  for (uint32_t i = 0; i < kMaxDeltaRegions + 3; ++i) {
    t.Add(kPageHeaderSize + i * 200, 4);
  }
  EXPECT_LE(t.region_count(), kMaxDeltaRegions);
  EXPECT_FALSE(t.whole_page());
  uint32_t covered = 0;
  for (uint32_t i = 0; i < t.region_count(); ++i) covered += t.regions()[i].len;
  EXPECT_GE(covered, (kMaxDeltaRegions + 3) * 4u);

  t.MarkAll();
  EXPECT_TRUE(t.whole_page());
  EXPECT_EQ(t.region_count(), 0u);
}

// ---------------------------------------------------------------------------
// PageDeltaRecord codec: round trip, and rejection of any corrupted byte.

TEST(PageDeltaTest, RecordCodecRoundTrip) {
  std::mt19937_64 rng(42);
  std::string page(kPageSize, '\0');
  for (char& c : page) c = static_cast<char>(rng());

  for (int iter = 0; iter < 500; ++iter) {
    PageDeltaTracker t;
    const uint32_t n = 1 + static_cast<uint32_t>(rng() % kMaxDeltaRegions);
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t off =
          kPageHeaderSize +
          static_cast<uint32_t>(rng() % (kPageSize - kPageHeaderSize - 128));
      t.Add(off, 1 + static_cast<uint32_t>(rng() % 128));
    }
    const PageId pid = 7 + iter;
    const Lsn lsn = 1000 + iter;
    std::string blob;
    PageDeltaRecord::Encode(t, pid, lsn, /*base_version=*/iter,
                            /*chain_idx=*/static_cast<uint16_t>(iter % 4),
                            /*dirty=*/(iter % 2) != 0, page.data(), &blob);
    ASSERT_EQ(blob.size(), PageDeltaRecord::EncodedSizeFor(t));

    PageDeltaRecord rec;
    ASSERT_TRUE(PageDeltaRecord::Decode(blob.data(),
                                        static_cast<uint32_t>(blob.size()),
                                        &rec));
    EXPECT_EQ(rec.page_id, pid);
    EXPECT_EQ(rec.lsn, lsn);
    EXPECT_EQ(rec.base_version, static_cast<uint64_t>(iter));
    EXPECT_EQ(rec.chain_idx, iter % 4);
    EXPECT_EQ(rec.dirty, (iter % 2) != 0 ? 1 : 0);
    ASSERT_EQ(rec.n_regions, t.region_count());
    // Applying the record onto a scrambled copy restores exactly the
    // tracked regions.
    std::string target(kPageSize, '\xee');
    rec.ApplyRegions(target.data());
    for (uint32_t i = 0; i < rec.n_regions; ++i) {
      const auto& r = rec.regions[i];
      ASSERT_EQ(0, memcmp(target.data() + r.off, page.data() + r.off, r.len));
    }

    // Any single flipped byte must fail the crc (or the structural checks).
    std::string bad = blob;
    const size_t flip = rng() % bad.size();
    bad[flip] = static_cast<char>(bad[flip] ^ 0x40);
    EXPECT_FALSE(PageDeltaRecord::Decode(
        bad.data(), static_cast<uint32_t>(bad.size()), &rec))
        << "flip at " << flip;
    // A truncated buffer must fail cleanly too.
    EXPECT_FALSE(PageDeltaRecord::Decode(
        blob.data(), static_cast<uint32_t>(blob.size() - 1), &rec));
  }
}

// ---------------------------------------------------------------------------
// DeltaRing fixture: a simulated owner with per-page base images, as the
// cache policies keep them.

class DeltaRingTest : public ::testing::Test {
 protected:
  void Init(uint32_t n_blocks, DeltaRingOptions tweak = DeltaRingOptions{}) {
    flash_ = std::make_unique<SimDevice>("flash",
                                         DeviceProfile::MlcSamsung470(),
                                         n_blocks);
    DeltaRingOptions o = tweak;
    o.base_block = 0;
    o.n_blocks = n_blocks;
    ring_ = std::make_unique<DeltaRing>(o, flash_.get());
    ring_->SetConsolidateFn([this](const std::vector<PageId>& pids) {
      return Consolidate(pids);
    });
    FACE_ASSERT_OK(ring_->Reset());
  }

  /// Owner-side full write: remember the image as the new base and re-base
  /// the chain.
  void FullWrite(PageId pid, const std::string& image) {
    base_[pid] = image;
    version_[pid] = ring_->BeginFull(pid, next_tag_++);
  }

  /// The slot-reuse callback: consolidate each page by folding its chain
  /// tip into the stored base (a full write in the real policies).
  Status Consolidate(const std::vector<PageId>& pids) {
    for (PageId pid : pids) {
      auto it = base_.find(pid);
      if (it == base_.end()) continue;
      DeltaRing::ChainView cv;
      if (!ring_->GetChain(pid, &cv) || cv.len == 0) continue;
      ring_->ApplyChain(pid, it->second.data());
      version_[pid] = ring_->BeginFull(pid, next_tag_++);
      ++consolidated_;
    }
    return Status::OK();
  }

  std::unique_ptr<SimDevice> flash_;
  std::unique_ptr<DeltaRing> ring_;
  std::unordered_map<PageId, std::string> base_;     ///< last full image
  std::unordered_map<PageId, uint64_t> version_;     ///< frame tip version
  uint64_t next_tag_ = 1;
  uint64_t consolidated_ = 0;
};

std::string FreshPage(PageId pid, Lsn lsn, std::mt19937_64& rng) {
  std::string page(kPageSize, '\0');
  for (char& c : page) c = static_cast<char>(rng());
  PageView v(page.data());
  v.set_page_id(pid);
  v.set_lsn(lsn);
  v.StampChecksum();
  return page;
}

// The tentpole differential: across a million fuzzed byte edits spread over
// a working set larger than the ring, apply(base, chain) must equal the
// full current image after every single step — while wraparound forces
// slot-reuse consolidations underneath.
TEST_F(DeltaRingTest, RandomizedDifferentialAcrossAMillionEdits) {
  // Long chains + a tiny ring: chains stay alive across a full ring lap,
  // so wraparound keeps landing on slots with live records and the
  // consolidation sweep runs for real.
  DeltaRingOptions tweak;
  tweak.max_chain = 64;
  tweak.max_chain_bytes = 1u << 20;
  Init(/*n_blocks=*/8, tweak);
  std::mt19937_64 rng(20120827);
  constexpr int kPages = 16;
  std::vector<std::string> truth;
  for (PageId p = 0; p < kPages; ++p) {
    truth.push_back(FreshPage(p, /*lsn=*/1, rng));
    FullWrite(p, truth[p]);
  }

  uint64_t edited_bytes = 0;
  Lsn lsn = 2;
  uint64_t appends = 0, full_writes = 0;
  while (edited_bytes < 1'000'000) {
    const PageId p = static_cast<PageId>(rng() % kPages);
    PageDeltaTracker tracker;
    const uint32_t n_spans = 1 + static_cast<uint32_t>(rng() % 3);
    for (uint32_t s = 0; s < n_spans; ++s) {
      const uint32_t len = 1 + static_cast<uint32_t>(rng() % 64);
      const uint32_t off =
          kPageHeaderSize +
          static_cast<uint32_t>(rng() %
                                (kPageSize - kPageHeaderSize - len));
      for (uint32_t i = 0; i < len; ++i) {
        truth[p][off + i] = static_cast<char>(rng());
      }
      tracker.Add(off, len);
      edited_bytes += len;
    }
    PageView v(truth[p].data());
    v.set_lsn(lsn);
    v.StampChecksum();

    bool appended = false;
    const uint32_t size = PageDeltaRecord::EncodedSizeFor(tracker);
    if (ring_->CanAppend(p, version_[p], size)) {
      FACE_ASSERT_OK_AND_ASSIGN(
          const uint64_t got,
          ring_->Append(p, version_[p], tracker, lsn, /*dirty=*/true,
                        truth[p].data()));
      if (got != kNoFlashVersion) {
        version_[p] = got;
        appended = true;
        ++appends;
      }
    }
    if (!appended) {
      FullWrite(p, truth[p]);
      ++full_writes;
    }
    ++lsn;

    // The differential check proper: base + chain == full current image.
    std::string img = base_[p];
    ring_->ApplyChain(p, img.data());
    ASSERT_EQ(0, memcmp(img.data() + kPageHeaderSize,
                        truth[p].data() + kPageHeaderSize,
                        kPageSize - kPageHeaderSize))
        << "differential mismatch on page " << p << " after " << edited_bytes
        << " edited bytes";
    ASSERT_EQ(ConstPageView(img.data()).lsn(), ConstPageView(truth[p].data()).lsn());
    ASSERT_TRUE(ConstPageView(img.data()).VerifyChecksum());
  }

  FACE_ASSERT_OK(ring_->CheckInvariants());
  // The tiny 8-block ring must have wrapped many times: slot-reuse
  // consolidation ran, and chains still never lost an edit (checked above).
  EXPECT_GT(ring_->stats().consolidations, 0u);
  EXPECT_GT(consolidated_, 0u);
  EXPECT_GT(appends, full_writes)
      << "delta path should dominate with small edits";
}

// Chain caps: length, per-record bytes, per-chain bytes, version mismatch.
TEST_F(DeltaRingTest, ThresholdAndVersionEdges) {
  DeltaRingOptions tweak;
  tweak.max_chain = 3;
  tweak.max_record_bytes = 256;
  tweak.max_chain_bytes = 400;
  Init(/*n_blocks=*/8, tweak);
  std::mt19937_64 rng(7);
  std::string page = FreshPage(/*pid=*/1, /*lsn=*/1, rng);
  FullWrite(1, page);

  PageDeltaTracker small;
  small.Add(kPageHeaderSize, 16);
  const uint32_t small_size = PageDeltaRecord::EncodedSizeFor(small);

  // No chain registered for an unknown page.
  EXPECT_FALSE(ring_->CanAppend(99, version_[1], small_size));
  // Version mismatch: a frame loaded from an older flash state may not
  // append (its tracked regions are not the diff vs. the current tip).
  EXPECT_FALSE(ring_->CanAppend(1, version_[1] + 1, small_size));
  EXPECT_FALSE(ring_->CanAppend(1, kNoFlashVersion, small_size));
  // A record beyond the per-record cap is refused outright.
  PageDeltaTracker big;
  big.Add(kPageHeaderSize, 300);
  EXPECT_FALSE(
      ring_->CanAppend(1, version_[1], PageDeltaRecord::EncodedSizeFor(big)));
  // Up to max_chain records fit; the next one is refused (the owner falls
  // back to a full write, which re-bases).
  Lsn lsn = 2;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring_->CanAppend(1, version_[1], small_size)) << i;
    page[kPageHeaderSize + i] = 'x';
    PageView(page.data()).set_lsn(lsn);
    PageView(page.data()).StampChecksum();
    FACE_ASSERT_OK_AND_ASSIGN(
        version_[1], ring_->Append(1, version_[1], small, lsn, true,
                                   page.data()));
    ASSERT_NE(version_[1], kNoFlashVersion);
    ++lsn;
  }
  EXPECT_FALSE(ring_->CanAppend(1, version_[1], small_size));
  DeltaRing::ChainView cv;
  ASSERT_TRUE(ring_->GetChain(1, &cv));
  EXPECT_EQ(cv.len, 3u);
  FullWrite(1, page);  // chain-too-long fallback
  ASSERT_TRUE(ring_->GetChain(1, &cv));
  EXPECT_EQ(cv.len, 0u);
  EXPECT_TRUE(ring_->CanAppend(1, version_[1], small_size));

  // The per-chain byte cap binds before the length cap when records are
  // fat: two 236-byte records exceed the 400-byte chain budget.
  PageDeltaTracker fat;
  fat.Add(kPageHeaderSize, 200);
  const uint32_t fat_size = PageDeltaRecord::EncodedSizeFor(fat);
  ASSERT_LE(fat_size, 256u);
  FACE_ASSERT_OK_AND_ASSIGN(
      version_[1],
      ring_->Append(1, version_[1], fat, lsn, true, page.data()));
  ASSERT_NE(version_[1], kNoFlashVersion);
  EXPECT_FALSE(ring_->CanAppend(1, version_[1], fat_size));

  // Drop forgets the chain entirely.
  ring_->Drop(1);
  EXPECT_FALSE(ring_->GetChain(1, &cv));
  FACE_ASSERT_OK(ring_->CheckInvariants());
}

// Flush + RecoverScan: durable records survive in order; a garbled byte
// mid-ring cuts the scan there and discards everything after.
TEST_F(DeltaRingTest, RecoverScanStopsAtGarbledRecord) {
  Init(/*n_blocks=*/8);
  std::mt19937_64 rng(11);
  std::string page = FreshPage(/*pid=*/5, /*lsn=*/1, rng);
  FullWrite(5, page);

  PageDeltaTracker t;
  t.Add(kPageHeaderSize, 32);
  DeltaRingOptions opts = ring_->options();
  std::vector<std::pair<Lsn, uint16_t>> appended;  // (lsn, chain_idx)
  Lsn lsn = 2;
  // Two batches with a Flush after each: everything lands on media. A full
  // write mid-stream (chain at cap) restarts chain indexes — expected.
  for (int batch = 0; batch < 2; ++batch) {
    for (int i = 0; i < 3; ++i) {
      page[kPageHeaderSize + i] = static_cast<char>('a' + i + batch * 3);
      PageView(page.data()).set_lsn(lsn);
      PageView(page.data()).StampChecksum();
      if (!ring_->CanAppend(5, version_[5],
                            PageDeltaRecord::EncodedSizeFor(t))) {
        FullWrite(5, page);
        continue;
      }
      DeltaRing::ChainView before;
      ASSERT_TRUE(ring_->GetChain(5, &before));
      FACE_ASSERT_OK_AND_ASSIGN(
          version_[5],
          ring_->Append(5, version_[5], t, lsn, true, page.data()));
      if (version_[5] != kNoFlashVersion) {
        appended.emplace_back(lsn, before.len);
      }
      ++lsn;
    }
    FACE_ASSERT_OK(ring_->Flush());
  }
  ASSERT_GE(appended.size(), 4u);

  // A clean recovery scan sees every record, in append order.
  {
    DeltaRing ring2(opts, flash_.get());
    FACE_ASSERT_OK_AND_ASSIGN(auto recs, ring2.RecoverScan());
    ASSERT_EQ(recs.size(), appended.size());
    for (size_t i = 0; i < recs.size(); ++i) {
      EXPECT_EQ(recs[i].rec.lsn, appended[i].first);
      EXPECT_EQ(recs[i].rec.page_id, 5u);
      EXPECT_EQ(recs[i].rec.chain_idx, appended[i].second);
    }
  }

  // Garble one byte in the middle of the first record's payload area: the
  // scan must stop before it and surface zero records (later blocks, if
  // any, are discarded as beyond the cut).
  FACE_ASSERT_OK(FaultInjector::GarbleBlocks(
      flash_.get(), opts.base_block, 1, '\x5a'));
  {
    DeltaRing ring2(opts, flash_.get());
    FACE_ASSERT_OK_AND_ASSIGN(auto recs, ring2.RecoverScan());
    EXPECT_TRUE(recs.empty());
  }
}

// A power cut mid-Flush (sector-granular tear via the FaultInjector) leaves
// a prefix of the rewritten block; recovery keeps exactly the records whose
// bytes fully survived and the ring keeps working afterwards.
TEST_F(DeltaRingTest, TornFlushRecoversDurablePrefix) {
  Init(/*n_blocks=*/8);
  std::mt19937_64 rng(13);
  std::string page = FreshPage(/*pid=*/3, /*lsn=*/1, rng);
  FullWrite(3, page);
  DeltaRingOptions opts = ring_->options();

  PageDeltaTracker t;
  t.Add(kPageHeaderSize, 600);  // fat records so the tear lands mid-record
  std::vector<Lsn> flushed;

  // First record made durable cleanly.
  Lsn lsn = 2;
  PageView(page.data()).set_lsn(lsn);
  PageView(page.data()).StampChecksum();
  FACE_ASSERT_OK_AND_ASSIGN(
      version_[3], ring_->Append(3, version_[3], t, lsn, true, page.data()));
  ASSERT_NE(version_[3], kNoFlashVersion);
  flushed.push_back(lsn);
  FACE_ASSERT_OK(ring_->Flush());
  ++lsn;

  // Second record's Flush is cut at sector granularity.
  PageView(page.data()).set_lsn(lsn);
  PageView(page.data()).StampChecksum();
  FACE_ASSERT_OK_AND_ASSIGN(
      version_[3], ring_->Append(3, version_[3], t, lsn, true, page.data()));
  ASSERT_NE(version_[3], kNoFlashVersion);
  FaultInjector inj;
  flash_->set_fault_injector(&inj);
  inj.SetTearGranularity("flash", TearGranularity::kSectorTear);
  inj.ArmAfterWrites(1, /*seed=*/99);
  EXPECT_TRUE(ring_->Flush().IsIOError());
  inj.Disarm();
  flash_->set_fault_injector(nullptr);

  // Recovery: the first record is durable and must survive; the second was
  // torn and may survive only if its bytes happened to land entirely before
  // the cut. Whatever comes back is a strict in-order prefix.
  DeltaRing ring2(opts, flash_.get());
  ring2.SetConsolidateFn([](const std::vector<PageId>&) {
    return Status::OK();
  });
  FACE_ASSERT_OK_AND_ASSIGN(auto recs, ring2.RecoverScan());
  ASSERT_GE(recs.size(), 1u);
  ASSERT_LE(recs.size(), 2u);
  EXPECT_EQ(recs[0].rec.lsn, flushed[0]);

  // Re-attach the survivors the way a policy's restart does, then keep
  // appending: the ring resumed in the same epoch past the survivors.
  const uint64_t ver = ring2.BeginFull(3, /*base_tag=*/1);
  uint64_t tip = ver;
  for (const auto& r : recs) {
    ASSERT_EQ(r.rec.chain_idx, &r - recs.data());
    tip = ring2.AttachRecovered(3, r);
  }
  PageView(page.data()).set_lsn(lsn + 1);
  PageView(page.data()).StampChecksum();
  PageDeltaTracker small;
  small.Add(kPageHeaderSize, 8);
  ASSERT_TRUE(
      ring2.CanAppend(3, tip, PageDeltaRecord::EncodedSizeFor(small)));
  FACE_ASSERT_OK_AND_ASSIGN(
      tip, ring2.Append(3, tip, small, lsn + 1, true, page.data()));
  EXPECT_NE(tip, kNoFlashVersion);
  FACE_ASSERT_OK(ring2.Flush());
  FACE_ASSERT_OK(ring2.CheckInvariants());
}

// Reset after a previous life: old-epoch records never resurface.
TEST_F(DeltaRingTest, ResetOrphansPriorEpochRecords) {
  Init(/*n_blocks=*/8);
  std::mt19937_64 rng(17);
  std::string page = FreshPage(/*pid=*/2, /*lsn=*/1, rng);
  FullWrite(2, page);
  PageDeltaTracker t;
  t.Add(kPageHeaderSize, 32);
  PageView(page.data()).set_lsn(2);
  PageView(page.data()).StampChecksum();
  FACE_ASSERT_OK_AND_ASSIGN(
      version_[2], ring_->Append(2, version_[2], t, /*lsn=*/2, true,
                                 page.data()));
  FACE_ASSERT_OK(ring_->Flush());

  // Format: a fresh epoch. The old record is still physically on media but
  // recovery must not return it.
  FACE_ASSERT_OK(ring_->Reset());
  DeltaRing ring2(ring_->options(), flash_.get());
  FACE_ASSERT_OK_AND_ASSIGN(auto recs, ring2.RecoverScan());
  EXPECT_TRUE(recs.empty());
}

}  // namespace
}  // namespace face
