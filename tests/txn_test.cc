// Unit tests: transaction lifecycle, physiological logging with
// diff-trimming, abort/undo with CLRs, read-only fast path.
#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "txn/transaction_manager.h"
#include "wal/log_record.h"

namespace face {
namespace {

class TxnTest : public EngineFixture {
 protected:
  void SetUp() override { Init(); }

  /// Read back all durable records (forces the log first).
  std::vector<LogRecord> DumpLog() {
    EXPECT_TRUE(log_->FlushAll().ok());
    std::vector<LogRecord> records;
    LogReader reader(log_dev_.get());
    EXPECT_TRUE(reader.Seek(LogManager::kLogStartLsn).ok());
    while (true) {
      auto rec = reader.Next();
      if (!rec.ok()) break;
      records.push_back(std::move(rec.value()));
    }
    return records;
  }
};

TEST_F(TxnTest, UpdateAppliesAndLogs) {
  const TxnId txn = db_->txns()->Begin();
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, db_->pool()->NewPage());
  const char* data = "transactional";
  FACE_ASSERT_OK(db_->txns()->Update(txn, &page, kPageHeaderSize, data, 13));
  EXPECT_EQ(memcmp(page.data() + kPageHeaderSize, data, 13), 0);
  FACE_ASSERT_OK(db_->txns()->Commit(txn));

  bool saw_begin = false, saw_update = false, saw_commit = false;
  for (const LogRecord& rec : DumpLog()) {
    if (rec.txn_id != txn) continue;
    if (rec.type == LogRecordType::kBegin) saw_begin = true;
    if (rec.type == LogRecordType::kUpdate) {
      saw_update = true;
      EXPECT_EQ(rec.after, std::string(data, 13));
      EXPECT_EQ(rec.before, std::string(13, '\0'));
    }
    if (rec.type == LogRecordType::kCommit) saw_commit = true;
  }
  EXPECT_TRUE(saw_begin && saw_update && saw_commit);
}

TEST_F(TxnTest, DiffTrimmingLogsOnlyChangedSpan) {
  const TxnId txn = db_->txns()->Begin();
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, db_->pool()->NewPage());
  // Prime 100 bytes, then change only bytes [40, 43).
  std::string base(100, 'z');
  FACE_ASSERT_OK(db_->txns()->Update(txn, &page, kPageHeaderSize,
                                     base.data(), 100));
  std::string changed = base;
  changed[40] = 'A';
  changed[42] = 'B';
  FACE_ASSERT_OK(db_->txns()->Update(txn, &page, kPageHeaderSize,
                                     changed.data(), 100));
  FACE_ASSERT_OK(db_->txns()->Commit(txn));

  // The second update must be trimmed to the 3-byte changed span. (The log
  // also holds the Format-time checkpoint and the Begin record.)
  std::vector<LogRecord> updates;
  for (LogRecord& rec : DumpLog()) {
    if (rec.type == LogRecordType::kUpdate) updates.push_back(std::move(rec));
  }
  ASSERT_EQ(updates.size(), 2u);
  const LogRecord& trimmed = updates[1];
  EXPECT_EQ(trimmed.offset, kPageHeaderSize + 40);
  EXPECT_EQ(trimmed.after.size(), 3u);
  EXPECT_EQ(trimmed.before, "zzz");
}

TEST_F(TxnTest, NoOpUpdateLogsNothing) {
  const TxnId txn = db_->txns()->Begin();
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, db_->pool()->NewPage());
  std::string zeros(64, '\0');
  FACE_ASSERT_OK(db_->txns()->Update(txn, &page, kPageHeaderSize,
                                     zeros.data(), 64));
  EXPECT_EQ(db_->txns()->stats().updates, 0u);
  FACE_ASSERT_OK(db_->txns()->Commit(txn));
}

TEST_F(TxnTest, AbortRestoresAllBytesInReverse) {
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, db_->pool()->NewPage());
  const PageId page_id = page.page_id();
  page.Release();

  const TxnId txn = db_->txns()->Begin();
  for (int i = 0; i < 10; ++i) {
    FACE_ASSERT_OK_AND_ASSIGN(PageHandle p, db_->pool()->FetchPage(page_id));
    const std::string v = "step" + std::to_string(i);
    FACE_ASSERT_OK(db_->txns()->Update(
        txn, &p, static_cast<uint16_t>(kPageHeaderSize + i * 8), v.data(),
        static_cast<uint32_t>(v.size())));
  }
  FACE_ASSERT_OK(db_->txns()->Abort(txn));

  FACE_ASSERT_OK_AND_ASSIGN(PageHandle p, db_->pool()->FetchPage(page_id));
  for (uint32_t i = kPageHeaderSize; i < kPageHeaderSize + 80; ++i) {
    EXPECT_EQ(p.data()[i], '\0') << "byte " << i;
  }
  // The log must contain CLRs chaining backwards.
  int clrs = 0;
  for (const LogRecord& rec : DumpLog()) {
    if (rec.type == LogRecordType::kClr) {
      ++clrs;
      EXPECT_NE(rec.undo_next_lsn, kInvalidLsn);
    }
  }
  EXPECT_EQ(clrs, 10);
}

TEST_F(TxnTest, ReadOnlyCommitLogsNothing) {
  const uint64_t bytes_before = log_->stats().bytes_appended;
  const TxnId txn = db_->txns()->Begin();
  FACE_ASSERT_OK(db_->txns()->Commit(txn));
  EXPECT_EQ(log_->stats().bytes_appended, bytes_before);
  // Same for a read-only abort.
  const TxnId txn2 = db_->txns()->Begin();
  FACE_ASSERT_OK(db_->txns()->Abort(txn2));
  EXPECT_EQ(log_->stats().bytes_appended, bytes_before);
}

TEST_F(TxnTest, CommitForcesTheLog) {
  const TxnId txn = db_->txns()->Begin();
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, db_->pool()->NewPage());
  FACE_ASSERT_OK(db_->txns()->Update(txn, &page, kPageHeaderSize, "d", 1));
  EXPECT_LT(log_->durable_lsn(), log_->next_lsn());
  FACE_ASSERT_OK(db_->txns()->Commit(txn));
  EXPECT_EQ(log_->durable_lsn(), log_->next_lsn());
}

TEST_F(TxnTest, InterleavedTransactionsKeepSeparateChains) {
  const TxnId a = db_->txns()->Begin();
  const TxnId b = db_->txns()->Begin();
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle pa, db_->pool()->NewPage());
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle pb, db_->pool()->NewPage());
  FACE_ASSERT_OK(db_->txns()->Update(a, &pa, kPageHeaderSize, "AAAA", 4));
  FACE_ASSERT_OK(db_->txns()->Update(b, &pb, kPageHeaderSize, "BBBB", 4));
  FACE_ASSERT_OK(db_->txns()->Update(a, &pa, kPageHeaderSize + 8, "aaaa", 4));
  EXPECT_EQ(db_->txns()->active_count(), 2u);
  FACE_ASSERT_OK(db_->txns()->Commit(a));
  // Aborting b must not disturb a's committed bytes.
  FACE_ASSERT_OK(db_->txns()->Abort(b));
  EXPECT_EQ(memcmp(pa.data() + kPageHeaderSize, "AAAA", 4), 0);
  EXPECT_EQ(memcmp(pb.data() + kPageHeaderSize, "\0\0\0\0", 4), 0);
}

TEST_F(TxnTest, OperationsOnInactiveTxnsFail) {
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, db_->pool()->NewPage());
  EXPECT_TRUE(db_->txns()->Update(999, &page, 0, "x", 1).IsInvalidArgument());
  EXPECT_TRUE(db_->txns()->Commit(999).IsInvalidArgument());
  EXPECT_TRUE(db_->txns()->Abort(999).IsInvalidArgument());
}

TEST_F(TxnTest, ActiveTxnsSkipsUnloggedTransactions) {
  const TxnId ro = db_->txns()->Begin();
  const TxnId rw = db_->txns()->Begin();
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, db_->pool()->NewPage());
  FACE_ASSERT_OK(db_->txns()->Update(rw, &page, kPageHeaderSize, "w", 1));
  const auto att = db_->txns()->ActiveTxns();
  ASSERT_EQ(att.size(), 1u);
  EXPECT_EQ(att[0].txn_id, rw);
  FACE_ASSERT_OK(db_->txns()->Commit(ro));
  FACE_ASSERT_OK(db_->txns()->Commit(rw));
}

}  // namespace
}  // namespace face
