// Unit tests: WAL record codec, LogManager append/force/attach, LogReader
// scanning, torn-tail detection, control block, truncation.
#include <gtest/gtest.h>

#include <string>

#include "sim/sim_device.h"
#include "tests/test_util.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace face {
namespace {

LogRecord MakeUpdate(TxnId txn, PageId page, uint16_t offset,
                     const std::string& before, const std::string& after) {
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.txn_id = txn;
  rec.page_id = page;
  rec.offset = offset;
  rec.before = before;
  rec.after = after;
  return rec;
}

TEST(LogRecordTest, EncodeDecodeAllTypes) {
  LogRecord update = MakeUpdate(7, 42, 100, "old", "new!");
  update.lsn = 4096;
  update.prev_lsn = 2048;
  const std::string bytes = update.Encode();
  EXPECT_EQ(bytes.size(), update.EncodedSize());
  FACE_ASSERT_OK_AND_ASSIGN(
      LogRecord decoded,
      LogRecord::Decode(bytes.data(), static_cast<uint32_t>(bytes.size())));
  EXPECT_EQ(decoded.type, LogRecordType::kUpdate);
  EXPECT_EQ(decoded.txn_id, 7u);
  EXPECT_EQ(decoded.page_id, 42u);
  EXPECT_EQ(decoded.offset, 100);
  EXPECT_EQ(decoded.before, "old");
  EXPECT_EQ(decoded.after, "new!");
  EXPECT_EQ(decoded.prev_lsn, 2048u);

  LogRecord ckpt;
  ckpt.type = LogRecordType::kCheckpointBegin;
  ckpt.lsn = 8192;
  ckpt.next_page_id = 500;
  ckpt.dirty_pages = {{1, 100}, {2, 200}};
  ckpt.active_txns = {{9, 300}};
  const std::string cbytes = ckpt.Encode();
  FACE_ASSERT_OK_AND_ASSIGN(
      LogRecord cdec,
      LogRecord::Decode(cbytes.data(), static_cast<uint32_t>(cbytes.size())));
  EXPECT_EQ(cdec.next_page_id, 500u);
  ASSERT_EQ(cdec.dirty_pages.size(), 2u);
  EXPECT_EQ(cdec.dirty_pages[1].page_id, 2u);
  EXPECT_EQ(cdec.dirty_pages[1].rec_lsn, 200u);
  ASSERT_EQ(cdec.active_txns.size(), 1u);
  EXPECT_EQ(cdec.active_txns[0].txn_id, 9u);

  LogRecord clr;
  clr.type = LogRecordType::kClr;
  clr.lsn = 1;
  clr.txn_id = 3;
  clr.page_id = 8;
  clr.offset = 16;
  clr.after = "comp";
  clr.undo_next_lsn = 77;
  const std::string lbytes = clr.Encode();
  FACE_ASSERT_OK_AND_ASSIGN(
      LogRecord ldec,
      LogRecord::Decode(lbytes.data(), static_cast<uint32_t>(lbytes.size())));
  EXPECT_EQ(ldec.undo_next_lsn, 77u);
  EXPECT_EQ(ldec.after, "comp");
}

TEST(LogRecordTest, DecodeRejectsCorruption) {
  LogRecord rec = MakeUpdate(1, 2, 3, "b", "a");
  rec.lsn = 4096;
  std::string bytes = rec.Encode();
  bytes[bytes.size() - 1] ^= 1;
  EXPECT_TRUE(LogRecord::Decode(bytes.data(),
                                static_cast<uint32_t>(bytes.size()))
                  .status()
                  .IsCorruption());
}

class LogManagerTest : public ::testing::Test {
 protected:
  LogManagerTest()
      : dev_("log", DeviceProfile::Seagate15k(), 1 << 16), log_(&dev_) {
    EXPECT_TRUE(log_.Format().ok());
  }
  SimDevice dev_;
  LogManager log_;
};

TEST_F(LogManagerTest, AppendAssignsMonotonicLsns) {
  LogRecord a = MakeUpdate(1, 1, 0, "x", "y");
  LogRecord b = MakeUpdate(1, 2, 0, "x", "y");
  const Lsn la = log_.Append(&a);
  const Lsn lb = log_.Append(&b);
  EXPECT_EQ(la, LogManager::kLogStartLsn);
  EXPECT_EQ(lb, la + a.EncodedSize());
  EXPECT_EQ(log_.next_lsn(), lb + b.EncodedSize());
}

TEST_F(LogManagerTest, NothingDurableUntilFlush) {
  LogRecord a = MakeUpdate(1, 1, 0, "x", "y");
  const Lsn la = log_.Append(&a);
  EXPECT_EQ(log_.durable_lsn(), LogManager::kLogStartLsn);
  FACE_ASSERT_OK(log_.FlushTo(la));
  EXPECT_GT(log_.durable_lsn(), la);
}

TEST_F(LogManagerTest, FlushWithNoNewAppendsWritesNothing) {
  // Regression: the early-out used to test `next_lsn_ == buffer_base_`, so
  // a flush with no new appends but a retained partial tail block rewrote
  // that already-durable block on every call.
  LogRecord a = MakeUpdate(1, 1, 0, "x", "y");  // not block-aligned
  log_.Append(&a);
  const uint64_t writes_before = dev_.stats().write_reqs;
  FACE_ASSERT_OK(log_.FlushAll());
  EXPECT_EQ(dev_.stats().write_reqs, writes_before + 1);

  // Back-to-back forces with nothing new: exactly zero further device
  // writes, whatever LSN the caller asks for.
  FACE_ASSERT_OK(log_.FlushAll());
  FACE_ASSERT_OK(log_.FlushTo(log_.durable_lsn()));
  FACE_ASSERT_OK(log_.FlushTo(log_.next_lsn()));
  EXPECT_EQ(dev_.stats().write_reqs, writes_before + 1);
  EXPECT_EQ(log_.stats().flushes, 1u);

  // The next real append still lands in the retained partial block.
  LogRecord b = MakeUpdate(1, 2, 0, "x", "y");
  const Lsn lb = log_.Append(&b);
  FACE_ASSERT_OK(log_.FlushTo(lb));
  EXPECT_EQ(dev_.stats().write_reqs, writes_before + 2);
  EXPECT_EQ(log_.durable_lsn(), log_.next_lsn());
}

TEST_F(LogManagerTest, ReaderScansExactlyWhatWasAppended) {
  std::vector<Lsn> lsns;
  for (int i = 0; i < 100; ++i) {
    LogRecord rec = MakeUpdate(1, static_cast<PageId>(i), 0, "aa", "bb");
    lsns.push_back(log_.Append(&rec));
  }
  FACE_ASSERT_OK(log_.FlushAll());

  LogReader reader(&dev_);
  FACE_ASSERT_OK(reader.Seek(LogManager::kLogStartLsn));
  for (int i = 0; i < 100; ++i) {
    FACE_ASSERT_OK_AND_ASSIGN(LogRecord rec, reader.Next());
    EXPECT_EQ(rec.lsn, lsns[i]);
    EXPECT_EQ(rec.page_id, static_cast<PageId>(i));
  }
  EXPECT_TRUE(reader.Next().status().IsNotFound());  // clean end of log
}

TEST_F(LogManagerTest, AttachFindsEndOfLogAfterRestart) {
  LogRecord a = MakeUpdate(1, 1, 0, "x", "yy");
  LogRecord b = MakeUpdate(1, 2, 0, "x", "zz");
  log_.Append(&a);
  const Lsn lb = log_.Append(&b);
  FACE_ASSERT_OK(log_.FlushAll());
  const Lsn end = log_.next_lsn();

  LogManager fresh(&dev_);
  FACE_ASSERT_OK(fresh.Attach());
  EXPECT_EQ(fresh.next_lsn(), end);
  EXPECT_EQ(fresh.durable_lsn(), end);

  // New appends continue the stream and old records stay readable.
  LogRecord c = MakeUpdate(2, 3, 0, "x", "w");
  const Lsn lc = fresh.Append(&c);
  EXPECT_EQ(lc, end);
  FACE_ASSERT_OK(fresh.FlushAll());
  LogReader reader(&dev_);
  FACE_ASSERT_OK(reader.Seek(lb));
  FACE_ASSERT_OK_AND_ASSIGN(LogRecord rb, reader.Next());
  EXPECT_EQ(rb.page_id, 2u);
  FACE_ASSERT_OK_AND_ASSIGN(LogRecord rc, reader.Next());
  EXPECT_EQ(rc.page_id, 3u);
}

TEST_F(LogManagerTest, UnflushedTailDiesWithACrash) {
  LogRecord a = MakeUpdate(1, 1, 0, "x", "durable");
  const Lsn la = log_.Append(&a);
  FACE_ASSERT_OK(log_.FlushTo(la));
  LogRecord b = MakeUpdate(1, 2, 0, "x", "volatile");
  log_.Append(&b);
  // No flush: a crash (new manager over the same device) must not see b.
  LogManager fresh(&dev_);
  FACE_ASSERT_OK(fresh.Attach());
  LogReader reader(&dev_);
  FACE_ASSERT_OK(reader.Seek(la));
  FACE_ASSERT_OK_AND_ASSIGN(LogRecord ra, reader.Next());
  EXPECT_EQ(ra.after, "durable");
  EXPECT_TRUE(reader.Next().status().IsNotFound());
}

TEST_F(LogManagerTest, ControlBlockRoundTrip) {
  FACE_ASSERT_OK_AND_ASSIGN(Lsn none, log_.ReadControlBlock());
  EXPECT_EQ(none, kInvalidLsn);
  FACE_ASSERT_OK(log_.WriteControlBlock(777777));
  FACE_ASSERT_OK_AND_ASSIGN(Lsn got, log_.ReadControlBlock());
  EXPECT_EQ(got, 777777u);
}

TEST_F(LogManagerTest, TruncateKeepsControlBlockAndTail) {
  // Fill several chunks of log, then truncate before the end.
  LogRecord rec = MakeUpdate(1, 1, 0, std::string(400, 'b'),
                             std::string(400, 'a'));
  Lsn last = 0;
  while (log_.next_lsn() < 3000 * kPageSize) last = log_.Append(&rec);
  FACE_ASSERT_OK(log_.FlushAll());
  log_.TruncateBefore(last);

  FACE_ASSERT_OK(log_.ReadControlBlock().status());  // control survives
  LogReader reader(&dev_);
  FACE_ASSERT_OK(reader.Seek(last));
  FACE_ASSERT_OK_AND_ASSIGN(LogRecord got, reader.Next());
  EXPECT_EQ(got.lsn, last);
}

TEST_F(LogManagerTest, GroupCommitFlushesCoBufferedRecords) {
  LogRecord a = MakeUpdate(1, 1, 0, "x", "y");
  LogRecord b = MakeUpdate(2, 2, 0, "x", "y");
  const Lsn la = log_.Append(&a);
  log_.Append(&b);
  const uint64_t flushes_before = log_.stats().flushes;
  FACE_ASSERT_OK(log_.FlushTo(la));  // forcing a also forces b
  EXPECT_EQ(log_.stats().flushes, flushes_before + 1);
  EXPECT_EQ(log_.durable_lsn(), log_.next_lsn());
  FACE_ASSERT_OK(log_.FlushTo(la));  // no-op: already durable
  EXPECT_EQ(log_.stats().flushes, flushes_before + 1);
}

}  // namespace
}  // namespace face
