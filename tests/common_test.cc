// Unit tests: Status/StatusOr, coding, CRC32-C, Slice, randoms, histogram.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "tests/test_util.h"

namespace face {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  const Status s = Status::NotFound("missing page");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.IsCorruption());
  EXPECT_EQ(s.ToString(), "NotFound: missing page");
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::OutOfSpace().IsOutOfSpace());
  EXPECT_TRUE(Status::Internal().IsInternal());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());

  StatusOr<int> e = Status::NotFound("x");
  ASSERT_FALSE(e.ok());
  EXPECT_TRUE(e.status().IsNotFound());
}

TEST(StatusOrTest, MacroPropagatesErrors) {
  auto inner = [](bool fail) -> StatusOr<int> {
    if (fail) return Status::Busy("locked");
    return 7;
  };
  auto outer = [&](bool fail) -> StatusOr<int> {
    FACE_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 8);
  EXPECT_TRUE(outer(true).status().IsBusy());
}

TEST(CodingTest, FixedWidthRoundTrip) {
  char buf[8];
  EncodeFixed16(buf, 0xBEEF);
  EXPECT_EQ(DecodeFixed16(buf), 0xBEEF);
  EncodeFixed32(buf, 0xDEADBEEFu);
  EXPECT_EQ(DecodeFixed32(buf), 0xDEADBEEFu);
  EncodeFixed64(buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(DecodeFixed64(buf), 0x0123456789ABCDEFull);

  std::string s;
  PutFixed16(&s, 1);
  PutFixed32(&s, 2);
  PutFixed64(&s, 3);
  EXPECT_EQ(s.size(), 14u);
  EXPECT_EQ(DecodeFixed16(s.data()), 1);
  EXPECT_EQ(DecodeFixed32(s.data() + 2), 2u);
  EXPECT_EQ(DecodeFixed64(s.data() + 6), 3u);
}

TEST(Crc32cTest, KnownProperties) {
  const std::string a = "hello crc world";
  const uint32_t crc = crc32c::Value(a.data(), a.size());
  EXPECT_EQ(crc, crc32c::Value(a.data(), a.size()));  // deterministic
  // Extend must equal one-shot over the concatenation.
  const uint32_t left = crc32c::Value(a.data(), 5);
  EXPECT_EQ(crc32c::Extend(left, a.data() + 5, a.size() - 5), crc);
  // Mask is reversible and different from the raw crc.
  EXPECT_NE(crc32c::Mask(crc), crc);
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
}

TEST(Crc32cTest, DetectsCorruption) {
  std::string a(512, 'a');
  const uint32_t crc = crc32c::Value(a.data(), a.size());
  a[100] ^= 1;
  EXPECT_NE(crc32c::Value(a.data(), a.size()), crc);
}

// Regression guard for the multi-lane large-input path: a one-shot crc of
// a large buffer must equal the crc composed from sub-lane-sized Extend
// chunks, which never enter the interleaved kernel. Covers the lane
// threshold (3 x 1344 = 4032), page-sized inputs (the checksum hot path),
// multi-tri-block inputs, and splits that land mid-lane — so a bug in the
// lane recombination cannot stay self-consistent.
TEST(Crc32cTest, LargeInputsMatchChunkedExtend) {
  std::string data(20000, '\0');
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (size_t i = 0; i < data.size(); ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    data[i] = static_cast<char>(x);
  }
  auto chunked = [&](size_t n, size_t chunk) {
    uint32_t crc = crc32c::Value(data.data(), std::min(chunk, n));
    for (size_t off = chunk; off < n; off += chunk) {
      crc = crc32c::Extend(crc, data.data() + off,
                           std::min(chunk, n - off));
    }
    return crc;
  };
  for (size_t n : {4031u, 4032u, 4033u, 4076u, 4096u, 8064u, 20000u}) {
    const uint32_t one_shot = crc32c::Value(data.data(), n);
    EXPECT_EQ(chunked(n, 512), one_shot) << "n=" << n;
    EXPECT_EQ(chunked(n, 1000), one_shot) << "n=" << n;
  }
  // Splits at and around the lane boundaries of a page-sized input.
  for (size_t split : {1u, 1343u, 1344u, 1345u, 2688u, 4031u, 4032u}) {
    uint32_t crc = crc32c::Value(data.data(), split);
    crc = crc32c::Extend(crc, data.data() + split, 4096 - split);
    EXPECT_EQ(crc, crc32c::Value(data.data(), 4096)) << "split=" << split;
  }
}

TEST(RandomTest, DeterministicAcrossInstances) {
  Random a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformRangeIsInclusive) {
  Random r(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = r.UniformRange(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values show up
}

TEST(RandomTest, AlphaAndNumStrings) {
  Random r(11);
  for (int i = 0; i < 50; ++i) {
    const std::string a = r.AlphaString(8, 16);
    EXPECT_GE(a.size(), 8u);
    EXPECT_LE(a.size(), 16u);
    const std::string n = r.NumString(9);
    EXPECT_EQ(n.size(), 9u);
    for (char c : n) EXPECT_TRUE(c >= '0' && c <= '9');
  }
}

TEST(ZipfTest, SkewsTowardLowValues) {
  ZipfGenerator zipf(1000, 0.99, 3);
  uint64_t low = 0, total = 20000;
  for (uint64_t i = 0; i < total; ++i) {
    if (zipf.Next() < 100) ++low;  // lowest 10 % of the key space
  }
  // With theta=0.99 the head takes well over half the mass.
  EXPECT_GT(low, total / 2);
}

TEST(ZipfTest, ZeroThetaIsRoughlyUniform) {
  ZipfGenerator zipf(10, 0.0, 3);
  std::map<uint64_t, uint64_t> counts;
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Next()];
  for (const auto& [v, c] : counts) {
    EXPECT_LT(v, 10u);
    EXPECT_GT(c, 700u);
    EXPECT_LT(c, 1300u);
  }
}

TEST(TpccRandomTest, NURandStaysInRange) {
  TpccRandom r(5);
  for (int i = 0; i < 2000; ++i) {
    const int64_t c = r.NURandCustomerId();
    EXPECT_GE(c, 1);
    EXPECT_LE(c, 3000);
    const int64_t item = r.NURandItemId();
    EXPECT_GE(item, 1);
    EXPECT_LE(item, 100000);
    const int64_t name = r.NURandLastName();
    EXPECT_GE(name, 0);
    EXPECT_LE(name, 999);
  }
}

TEST(TpccRandomTest, NURandIsNonUniform) {
  TpccRandom r(5);
  std::map<int64_t, int> hist;
  for (int i = 0; i < 30000; ++i) ++hist[r.NURandCustomerId() / 300];
  // A uniform draw would put ~3000 in each decile; NURand concentrates.
  int max_bucket = 0;
  for (const auto& [b, c] : hist) max_bucket = std::max(max_bucket, c);
  EXPECT_GT(max_bucket, 3600);
}

TEST(TpccRandomTest, LastNameSyllables) {
  EXPECT_EQ(TpccRandom::LastName(0), "BARBARBAR");
  EXPECT_EQ(TpccRandom::LastName(371), "PRICALLYOUGHT");
  EXPECT_EQ(TpccRandom::LastName(999), "EINGEINGEING");
}

TEST(SliceTest, BasicViews) {
  const std::string s = "abcdef";
  Slice sl(s);
  EXPECT_EQ(sl.size(), 6u);
  EXPECT_EQ(sl.ToString(), "abcdef");
  sl.RemovePrefix(2);
  EXPECT_EQ(sl.ToString(), "cdef");
  EXPECT_EQ(sl[0], 'c');
  EXPECT_TRUE(Slice("abcdef").StartsWith(Slice("abc")));
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_TRUE(Slice("x") == Slice("x"));
}

TEST(HistogramTest, PercentilesAndMean) {
  Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.mean(), 500.5, 1.0);
  // Bucketed percentiles are approximate; allow generous slack.
  EXPECT_NEAR(h.Percentile(50), 500, 260);
  EXPECT_GT(h.Percentile(99), h.Percentile(50));
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.sum(), 500500u);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(0), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(100), 0.0);
}

TEST(HistogramTest, SingleSample) {
  // In-bucket interpolation must never report a value outside the observed
  // range: a single sample of 5 lands in bucket [4, 8), whose floor is 4.
  Histogram h;
  h.Add(5);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 5u);
  EXPECT_EQ(h.Percentile(0), 5.0);
  EXPECT_EQ(h.Percentile(50), 5.0);
  EXPECT_EQ(h.Percentile(100), 5.0);
}

TEST(HistogramTest, PercentileBoundsAndMonotonicity) {
  Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) h.Add(i);
  // The endpoints clamp to the observed extremes exactly.
  EXPECT_EQ(h.Percentile(0), 1.0);
  EXPECT_EQ(h.Percentile(100), 1000.0);
  double prev = h.Percentile(0);
  for (double p = 5; p <= 100; p += 5) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "percentile regressed at p=" << p;
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 1000.0);
    prev = v;
  }
}

TEST(HistogramTest, TopBucketInterpolatesToMax) {
  // Bucket 63 covers [2^62, inf): its ceiling is the observed max, not a
  // power of two. With samples straddling the 2^62 boundary, percentiles
  // must stay monotone and interpolate above the top bucket's floor
  // instead of collapsing onto it.
  const uint64_t kBoundary = 1ull << 62;
  Histogram h;
  h.Add(kBoundary / 2);      // bucket 62
  h.Add(kBoundary);          // bucket 63 floor
  h.Add(kBoundary + 1000);   // bucket 63
  h.Add(3 * kBoundary);      // bucket 63, above any 2^i ceiling <= 2^62
  EXPECT_EQ(h.Percentile(0), static_cast<double>(kBoundary / 2));
  EXPECT_EQ(h.Percentile(100), static_cast<double>(3 * kBoundary));
  // The top bucket holds 3 of 4 samples, so p90 lands inside it and must
  // interpolate strictly above the bucket floor (the old clamp pinned the
  // whole bucket to 2^62).
  EXPECT_GT(h.Percentile(90), static_cast<double>(kBoundary));
  double prev = h.Percentile(0);
  for (double p = 1; p <= 100; p += 1) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "percentile regressed at p=" << p;
    EXPECT_LE(v, static_cast<double>(3 * kBoundary));
    prev = v;
  }
}

TEST(HistogramTest, ZeroSamplesStayInRange) {
  Histogram h;
  h.Add(0);
  h.Add(0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(100), 0.0);
}

TEST(HistogramTest, MergeMatchesDirectBuild) {
  // Bucket contents are identical whether samples arrive via one histogram
  // or a merge of two, so every derived statistic must match exactly.
  Histogram a, b, direct;
  for (uint64_t i = 1; i <= 100; ++i) a.Add(i);
  for (uint64_t i = 101; i <= 200; ++i) b.Add(i);
  for (uint64_t i = 1; i <= 200; ++i) direct.Add(i);
  a.Merge(b);
  EXPECT_EQ(a.count(), direct.count());
  EXPECT_EQ(a.sum(), direct.sum());
  EXPECT_EQ(a.min(), direct.min());
  EXPECT_EQ(a.max(), direct.max());
  for (double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(a.Percentile(p), direct.Percentile(p)) << "p=" << p;
  }
}

TEST(HistogramTest, MergeWithEmpty) {
  Histogram a, empty;
  a.Add(7);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 7u);
  EXPECT_EQ(a.max(), 7u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 7u);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  for (uint64_t i = 1; i <= 50; ++i) h.Add(i);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(99), 0.0);
  // A cleared histogram accepts new samples as if freshly constructed.
  h.Add(3);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.Percentile(50), 3.0);
}

}  // namespace
}  // namespace face
