// Unit tests: the TAC baseline — on-entry temperature-gated admission,
// write-through coherence, persistent slot directory, restart recovery.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/tac_cache.h"
#include "tests/test_util.h"

namespace face {
namespace {

class TacCacheTest : public ::testing::Test {
 protected:
  void Init(TacOptions options) {
    options_ = options;
    db_dev_ = std::make_unique<SimDevice>("db", DeviceProfile::Raid0Seagate(8),
                                          1 << 16);
    storage_ = std::make_unique<DbStorage>(db_dev_.get());
    flash_ = std::make_unique<SimDevice>(
        "flash", DeviceProfile::MlcSamsung470(),
        TacCache::DeviceBlocksFor(options.n_frames));
    cache_ = std::make_unique<TacCache>(options_, flash_.get(),
                                        storage_.get());
    FACE_ASSERT_OK(cache_->Format());
  }

  void Reboot() {
    cache_ = std::make_unique<TacCache>(options_, flash_.get(),
                                        storage_.get());
    FACE_ASSERT_OK(cache_->RecoverAfterCrash());
  }

  std::string MakePage(PageId page_id, char fill = 'p') {
    std::string page(kPageSize, '\0');
    PageView v(page.data());
    v.Format(page_id);
    memset(v.payload(), fill, 32);
    return page;
  }

  TacOptions options_;
  std::unique_ptr<SimDevice> db_dev_, flash_;
  std::unique_ptr<DbStorage> storage_;
  std::unique_ptr<TacCache> cache_;
};

TEST_F(TacCacheTest, CachesOnEntryFromDisk) {
  TacOptions o;
  o.n_frames = 8;
  Init(o);
  std::string page = MakePage(3, 'e');
  FACE_ASSERT_OK(cache_->OnFetchFromDisk(3, page.data()));
  EXPECT_TRUE(cache_->Contains(3));
  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK_AND_ASSIGN(FlashReadResult r, cache_->ReadPage(3, &out[0]));
  EXPECT_FALSE(r.dirty);  // write-through: never dirty
  EXPECT_EQ(out[kPageHeaderSize], 'e');
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

TEST_F(TacCacheTest, TemperatureGateRejectsColdReplacements) {
  TacOptions o;
  o.n_frames = 2;
  o.extent_pages = 1;  // per-page temperature for precision
  Init(o);
  std::string page = MakePage(1);
  // Heat pages 1 and 2 (two fetches each).
  for (PageId p : {1, 2, 1, 2}) {
    page = MakePage(p);
    FACE_ASSERT_OK(cache_->OnFetchFromDisk(p, page.data()));
  }
  // A colder page (first touch) must NOT displace them.
  page = MakePage(9);
  FACE_ASSERT_OK(cache_->OnFetchFromDisk(9, page.data()));
  EXPECT_FALSE(cache_->Contains(9));
  EXPECT_TRUE(cache_->Contains(1));
  EXPECT_TRUE(cache_->Contains(2));
  // After enough touches, page 9's extent heats past the coldest entry.
  for (int i = 0; i < 4; ++i) {
    page = MakePage(9);
    FACE_ASSERT_OK(cache_->OnFetchFromDisk(9, page.data()));
  }
  EXPECT_TRUE(cache_->Contains(9));
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

TEST_F(TacCacheTest, WriteThroughKeepsDiskAndFlashCoherent) {
  TacOptions o;
  o.n_frames = 8;
  Init(o);
  std::string page = MakePage(5, 'a');
  FACE_ASSERT_OK(cache_->OnFetchFromDisk(5, page.data()));
  // A dirty eviction goes to disk AND refreshes the flash copy.
  page = MakePage(5, 'b');
  FACE_ASSERT_OK(cache_->OnDramEvict(5, page.data(), true, true, 1));
  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK(storage_->ReadPage(5, out.data()));
  EXPECT_EQ(out[kPageHeaderSize], 'b');
  FACE_ASSERT_OK(cache_->ReadPage(5, out.data()).status());
  EXPECT_EQ(out[kPageHeaderSize], 'b');
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

TEST_F(TacCacheTest, MetadataUpdatesAreRandomFlashWrites) {
  TacOptions o;
  o.n_frames = 16;
  o.extent_pages = 1;
  Init(o);
  const uint64_t meta0 = cache_->stats().meta_flash_writes;
  std::string page;
  for (PageId p = 0; p < 16; ++p) {
    page = MakePage(p);
    FACE_ASSERT_OK(cache_->OnFetchFromDisk(p, page.data()));
  }
  // One directory write per admission (validation).
  EXPECT_GE(cache_->stats().meta_flash_writes, meta0 + 16);
  // Heat a fresh extent hot enough to force replacements: each one costs
  // an invalidation write AND a validation write (the paper's point).
  const uint64_t meta1 = cache_->stats().meta_flash_writes;
  for (int i = 0; i < 3; ++i) {
    page = MakePage(50);
    FACE_ASSERT_OK(cache_->OnFetchFromDisk(50, page.data()));
  }
  ASSERT_TRUE(cache_->Contains(50));
  EXPECT_GE(cache_->stats().meta_flash_writes, meta1 + 2);
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

TEST_F(TacCacheTest, DirectorySurvivesCrash) {
  TacOptions o;
  o.n_frames = 8;
  Init(o);
  std::string page;
  for (PageId p = 0; p < 5; ++p) {
    page = MakePage(p, static_cast<char>('A' + p));
    FACE_ASSERT_OK(cache_->OnFetchFromDisk(p, page.data()));
  }
  Reboot();
  EXPECT_EQ(cache_->cached_pages(), 5u);
  std::string out(kPageSize, '\0');
  for (PageId p = 0; p < 5; ++p) {
    ASSERT_TRUE(cache_->Contains(p));
    FACE_ASSERT_OK(cache_->ReadPage(p, out.data()).status());
    EXPECT_EQ(out[kPageHeaderSize], static_cast<char>('A' + p));
  }
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

TEST_F(TacCacheTest, CheckpointWriteInvalidatesStaleFlashCopy) {
  TacOptions o;
  o.n_frames = 8;
  Init(o);
  std::string page = MakePage(2, 'o');
  FACE_ASSERT_OK(cache_->OnFetchFromDisk(2, page.data()));
  // The buffer pool wrote the page to disk directly (checkpoint path of a
  // non-absorbing policy) — the flash copy is now stale and must go.
  cache_->OnPageWrittenToDisk(2);
  EXPECT_FALSE(cache_->Contains(2));
  FACE_ASSERT_OK(cache_->CheckInvariants());
  // And the invalidation is persistent.
  Reboot();
  EXPECT_FALSE(cache_->Contains(2));
}

}  // namespace
}  // namespace face
