// Unit tests: device cost model, simulated devices (sequentiality
// detection, RAID striping, trim, clone, save/load), closed-loop scheduler.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "sim/device_model.h"
#include "sim/scheduler.h"
#include "sim/sim_device.h"
#include "tests/test_util.h"

namespace face {
namespace {

TEST(DeviceProfileTest, Table1Calibration) {
  // Random service times must invert to the paper's IOPS figures.
  const DeviceProfile mlc = DeviceProfile::MlcSamsung470();
  EXPECT_NEAR(1e9 / mlc.random_read_ns, 28495, 30);
  EXPECT_NEAR(1e9 / mlc.random_write_ns, 6314, 10);
  // Sequential per-page transfer must invert to the bandwidth figures
  // (decimal MB/s, as device vendors and the paper quote them).
  EXPECT_NEAR(kPageSize / (mlc.seq_read_ns / 1e9) / 1e6, 251.33, 3.0);

  const DeviceProfile disk = DeviceProfile::Seagate15k();
  EXPECT_NEAR(1e9 / disk.random_read_ns, 409, 2);
  EXPECT_NEAR(1e9 / disk.random_write_ns, 343, 2);
}

TEST(DeviceProfileTest, RandomCostsDwarfSequentialOnFlash) {
  const DeviceProfile mlc = DeviceProfile::MlcSamsung470();
  // The property the whole paper rests on: random writes are ~10x
  // sequential writes on flash.
  EXPECT_GT(mlc.random_write_ns / mlc.seq_write_ns, 8.0);
  // Reads are much closer (paper: 48-60 % of sequential bandwidth).
  EXPECT_LT(mlc.random_read_ns / mlc.seq_read_ns, 3.0);
}

TEST(DeviceProfileTest, ServiceTimeComposition) {
  const DeviceProfile d = DeviceProfile::Seagate15k();
  const SimNanos seq4 = d.ServiceNs(IoOp::kRead, true, 4);
  const SimNanos rand1 = d.ServiceNs(IoOp::kRead, false, 1);
  const SimNanos rand4 = d.ServiceNs(IoOp::kRead, false, 4);
  EXPECT_NEAR(static_cast<double>(seq4), 4 * d.seq_read_ns, 2.0);
  // positioning + 4 transfers == (positioning + 1 transfer) + 3 transfers,
  // up to float->integer truncation.
  EXPECT_NEAR(static_cast<double>(rand4),
              static_cast<double>(rand1 + seq4) - d.seq_read_ns, 2.0);
}

TEST(SimDeviceTest, StoresAndReturnsBytes) {
  SimDevice dev("d", DeviceProfile::Seagate15k(), 128);
  std::string out(kPageSize, '\0');
  std::string in(kPageSize, 'z');
  FACE_ASSERT_OK(dev.Write(5, in.data()));
  FACE_ASSERT_OK(dev.Read(5, out.data()));
  EXPECT_EQ(in, out);
  // Unwritten blocks read back as zeroes.
  FACE_ASSERT_OK(dev.Read(6, out.data()));
  EXPECT_EQ(out, std::string(kPageSize, '\0'));
}

TEST(SimDeviceTest, RejectsOutOfRangeIo) {
  SimDevice dev("d", DeviceProfile::Seagate15k(), 16);
  std::string page(kPageSize, 'x');
  EXPECT_TRUE(dev.Write(16, page.data()).IsIOError());
  EXPECT_TRUE(dev.ReadBatch(10, 7, page.data()).IsIOError());
}

TEST(SimDeviceTest, DetectsSequentialityFromOffsets) {
  SimDevice dev("d", DeviceProfile::MlcSamsung470(), 4096);
  std::string page(kPageSize, 'x');
  // An append stream: first write random, rest sequential.
  for (uint64_t b = 100; b < 110; ++b) FACE_ASSERT_OK(dev.Write(b, page.data()));
  EXPECT_EQ(dev.stats().write_reqs, 10u);
  EXPECT_EQ(dev.stats().seq_write_reqs, 9u);
  // A jump breaks the run.
  FACE_ASSERT_OK(dev.Write(500, page.data()));
  EXPECT_EQ(dev.stats().seq_write_reqs, 9u);
}

TEST(SimDeviceTest, ReadAndWriteStreamsTrackedIndependently) {
  SimDevice dev("d", DeviceProfile::MlcSamsung470(), 4096);
  std::string page(kPageSize, 'x');
  // Interleave an append-write stream with a sequential read stream
  // (mvFIFO enqueue+dequeue): both must stay sequential.
  FACE_ASSERT_OK(dev.Write(100, page.data()));
  FACE_ASSERT_OK(dev.Read(200, page.data()));
  for (int i = 1; i < 8; ++i) {
    FACE_ASSERT_OK(dev.Write(100 + i, page.data()));
    FACE_ASSERT_OK(dev.Read(200 + i, page.data()));
  }
  EXPECT_EQ(dev.stats().seq_write_reqs, 7u);
  EXPECT_EQ(dev.stats().seq_read_reqs, 7u);
}

TEST(SimDeviceTest, SequentialIsFarCheaperThanRandomOnFlash) {
  std::string page(kPageSize, 'x');
  SimDevice seq("s", DeviceProfile::MlcSamsung470(), 1 << 16);
  for (uint64_t b = 0; b < 1000; ++b) (void)seq.Write(b, page.data());
  SimDevice rnd("r", DeviceProfile::MlcSamsung470(), 1 << 16);
  Random r(3);
  for (uint64_t i = 0; i < 1000; ++i) {
    (void)rnd.Write(r.Uniform(1 << 16), page.data());
  }
  EXPECT_GT(rnd.stats().busy_ns, 5 * seq.stats().busy_ns);
}

TEST(SimDeviceTest, RaidStripesAcrossStationsAndStaysSequential) {
  const DeviceProfile raid = DeviceProfile::Raid0Seagate(4);
  IoScheduler sched(1);
  SimDevice dev("raid", raid, 1 << 16, &sched);
  // One full-stripe-width sequential stream.
  std::string buf(64 * kPageSize, 'x');
  for (uint64_t b = 0; b + 64 <= 4096; b += 64) {
    FACE_ASSERT_OK(dev.WriteBatch(b, 64, buf.data()));
  }
  // Every spindle must have been busy (striping spreads load).
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_GT(sched.station_busy_ns(s), 0u) << "station " << s;
  }
  // Spindle-local sequentiality: nearly all requests classify sequential.
  const DeviceStats& st = dev.stats();
  EXPECT_GT(st.seq_write_reqs, st.write_reqs * 9 / 10);
}

TEST(SimDeviceTest, TimingDisabledMovesBytesOnly) {
  SimDevice dev("d", DeviceProfile::Seagate15k(), 64);
  dev.set_timing_enabled(false);
  std::string page(kPageSize, 'q');
  FACE_ASSERT_OK(dev.Write(1, page.data()));
  EXPECT_EQ(dev.stats().write_reqs, 0u);
  EXPECT_EQ(dev.stats().busy_ns, 0u);
  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK(dev.Read(1, out.data()));
  EXPECT_EQ(out, page);
}

TEST(SimDeviceTest, CloneCopiesContents) {
  SimDevice a("a", DeviceProfile::Seagate15k(), 2048);
  std::string page(kPageSize, 'c');
  FACE_ASSERT_OK(a.Write(1500, page.data()));
  SimDevice b("b", DeviceProfile::MlcSamsung470(), 4096);
  FACE_ASSERT_OK(b.CloneContentsFrom(a));
  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK(b.Read(1500, out.data()));
  EXPECT_EQ(out, page);
}

TEST(SimDeviceTest, TrimReleasesOnlyWholeChunksOutsideKeep) {
  SimDevice dev("d", DeviceProfile::Seagate15k(), 4096);
  std::string page(kPageSize, 't');
  FACE_ASSERT_OK(dev.Write(0, page.data()));      // chunk 0 (protected)
  FACE_ASSERT_OK(dev.Write(1030, page.data()));   // chunk 1
  FACE_ASSERT_OK(dev.Write(2050, page.data()));   // chunk 2
  dev.TrimBefore(/*block=*/2048, /*keep_below=*/1);
  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK(dev.Read(0, out.data()));
  EXPECT_EQ(out, page) << "block 0 must survive (keep_below)";
  FACE_ASSERT_OK(dev.Read(1030, out.data()));
  EXPECT_EQ(out, std::string(kPageSize, '\0')) << "chunk 1 trimmed";
  FACE_ASSERT_OK(dev.Read(2050, out.data()));
  EXPECT_EQ(out, page) << "chunk 2 beyond trim point";
}

TEST(SimDeviceTest, SaveLoadRoundTrip) {
  SimDevice a("a", DeviceProfile::Seagate15k(), 4096);
  std::string page(kPageSize, 's');
  FACE_ASSERT_OK(a.Write(7, page.data()));
  FACE_ASSERT_OK(a.Write(3000, page.data()));
  const std::string path = ::testing::TempDir() + "/face_dev_image.bin";
  FACE_ASSERT_OK(a.SaveContents(path));

  SimDevice b("b", DeviceProfile::Seagate15k(), 4096);
  FACE_ASSERT_OK(b.LoadContents(path));
  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK(b.Read(7, out.data()));
  EXPECT_EQ(out, page);
  FACE_ASSERT_OK(b.Read(3000, out.data()));
  EXPECT_EQ(out, page);
  // Capacity mismatch is rejected.
  SimDevice c("c", DeviceProfile::Seagate15k(), 1024);
  EXPECT_FALSE(c.LoadContents(path).ok());
  remove(path.c_str());
}

TEST(SimDeviceTest, BatchIoCrossesChunkBoundaries) {
  // Lazy chunks are 1024 pages; batch requests must span them seamlessly
  // (the span-copy fast path works chunk by chunk).
  SimDevice dev("d", DeviceProfile::Seagate15k(), 4096);
  std::string in(40 * kPageSize, '\0');
  for (size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<char>('a' + i % 23);
  }
  FACE_ASSERT_OK(dev.WriteBatch(1004, 40, in.data()));  // spans 1024
  std::string out(40 * kPageSize, '\0');
  FACE_ASSERT_OK(dev.ReadBatch(1004, 40, out.data()));
  EXPECT_EQ(in, out);
  // A batch read over written + never-written pages zero-fills the
  // unwritten span.
  std::string tail(8 * kPageSize, 'x');
  FACE_ASSERT_OK(dev.ReadBatch(1040, 8, tail.data()));
  EXPECT_EQ(tail.substr(0, 4 * kPageSize), in.substr(36 * kPageSize));
  EXPECT_EQ(tail.substr(4 * kPageSize), std::string(4 * kPageSize, '\0'));
}

TEST(SimDeviceTest, EraseKeepsStatsButResetsSequentiality) {
  // Erase models reformatting the media, not resetting the measurement:
  // counters survive, but the head-position history restarts with the
  // contents.
  SimDevice dev("d", DeviceProfile::MlcSamsung470(), 4096);
  std::string page(kPageSize, 'e');
  for (uint64_t b = 10; b < 14; ++b) FACE_ASSERT_OK(dev.Write(b, page.data()));
  EXPECT_EQ(dev.stats().write_reqs, 4u);
  EXPECT_EQ(dev.stats().seq_write_reqs, 3u);
  const uint64_t busy = dev.stats().busy_ns;
  EXPECT_GT(busy, 0u);

  dev.Erase();
  EXPECT_EQ(dev.stats().write_reqs, 4u) << "stats survive Erase";
  EXPECT_EQ(dev.stats().busy_ns, busy);
  std::string out(kPageSize, 'x');
  FACE_ASSERT_OK(dev.Read(10, out.data()));
  EXPECT_EQ(out, std::string(kPageSize, '\0')) << "contents wiped";
  // Block 14 would have continued the pre-Erase write run; it must now
  // classify random.
  FACE_ASSERT_OK(dev.Write(14, page.data()));
  EXPECT_EQ(dev.stats().seq_write_reqs, 3u);
  EXPECT_EQ(dev.stats().write_reqs, 5u);
}

TEST(SimDeviceTest, TrimRoundsInwardAtChunkBoundaries) {
  SimDevice dev("d", DeviceProfile::Seagate15k(), 8192);
  std::string page(kPageSize, 'r');
  FACE_ASSERT_OK(dev.Write(1023, page.data()));  // chunk 0 tail
  FACE_ASSERT_OK(dev.Write(1024, page.data()));  // chunk 1 head
  FACE_ASSERT_OK(dev.Write(2047, page.data()));  // chunk 1 tail
  FACE_ASSERT_OK(dev.Write(2048, page.data()));  // chunk 2 head

  // keep_below inside chunk 0 protects all of chunk 0 (rounded up);
  // block exactly on the chunk-2 boundary frees chunk 1 in full but
  // cannot touch chunk 2.
  dev.TrimBefore(/*block=*/2048, /*keep_below=*/1);
  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK(dev.Read(1023, out.data()));
  EXPECT_EQ(out, page) << "partially protected chunk kept in full";
  FACE_ASSERT_OK(dev.Read(1024, out.data()));
  EXPECT_EQ(out, std::string(kPageSize, '\0')) << "chunk 1 freed";
  FACE_ASSERT_OK(dev.Read(2048, out.data()));
  EXPECT_EQ(out, page) << "chunk at the trim point kept";

  // A trim point in the middle of a chunk keeps that whole chunk.
  SimDevice mid("m", DeviceProfile::Seagate15k(), 8192);
  FACE_ASSERT_OK(mid.Write(1024, page.data()));
  FACE_ASSERT_OK(mid.Write(1500, page.data()));
  mid.TrimBefore(/*block=*/1400, /*keep_below=*/1);
  FACE_ASSERT_OK(mid.Read(1024, out.data()));
  EXPECT_EQ(out, page) << "chunk straddling the trim point survives whole";
}

TEST(SimDeviceTest, TruncatedImageLeavesDeviceUntouched) {
  // Regression: LoadContents used to Erase() before reading, so a short
  // image left the device half-loaded with no rollback.
  SimDevice a("a", DeviceProfile::Seagate15k(), 4096);
  std::string page(kPageSize, 'i');
  FACE_ASSERT_OK(a.Write(5, page.data()));
  FACE_ASSERT_OK(a.Write(2050, page.data()));
  const std::string path = ::testing::TempDir() + "/face_trunc_image.bin";
  FACE_ASSERT_OK(a.SaveContents(path));

  // Truncate the file in the middle of the second chunk's payload.
  FILE* f = fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  fseek(f, 0, SEEK_END);
  const long full_size = ftell(f);
  fclose(f);
  ASSERT_EQ(truncate(path.c_str(), full_size - 1000), 0);

  SimDevice b("b", DeviceProfile::Seagate15k(), 4096);
  std::string prior(kPageSize, 'p');
  FACE_ASSERT_OK(b.Write(7, prior.data()));
  EXPECT_TRUE(b.LoadContents(path).IsCorruption());
  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK(b.Read(7, out.data()));
  EXPECT_EQ(out, prior) << "failed load must not disturb existing contents";
  FACE_ASSERT_OK(b.Read(5, out.data()));
  EXPECT_EQ(out, std::string(kPageSize, '\0'))
      << "no partial image may leak in";
  remove(path.c_str());
}

TEST(SchedulerTest, ClosedLoopAssignsEarliestFreeToken) {
  IoScheduler sched(2);
  const uint32_t st = sched.RegisterStations(1);
  // Two txns on two tokens, each 100us of I/O: they queue on the single
  // station, so completions land at 100 and 200us.
  sched.BeginTxn();
  sched.OnIo(st, 100 * kNanosPerMicro);
  EXPECT_EQ(sched.EndTxn(), 100 * kNanosPerMicro);
  sched.BeginTxn();
  sched.OnIo(st, 100 * kNanosPerMicro);
  EXPECT_EQ(sched.EndTxn(), 200 * kNanosPerMicro);
  // Third txn goes to the token that freed first (t=100), but still waits
  // for the station.
  sched.BeginTxn();
  sched.OnIo(st, 50 * kNanosPerMicro);
  EXPECT_EQ(sched.EndTxn(), 250 * kNanosPerMicro);
  EXPECT_EQ(sched.txns_completed(), 3u);
  EXPECT_EQ(sched.station_busy_ns(st), 250 * kNanosPerMicro);
}

TEST(SchedulerTest, CpuTimeDoesNotContend) {
  IoScheduler sched(2);
  sched.BeginTxn();
  sched.OnCpu(10 * kNanosPerMicro);
  EXPECT_EQ(sched.EndTxn(), 10 * kNanosPerMicro);
  sched.BeginTxn();
  sched.OnCpu(10 * kNanosPerMicro);
  // Second client token: starts at 0, no contention with the first.
  EXPECT_EQ(sched.EndTxn(), 10 * kNanosPerMicro);
}

TEST(SchedulerTest, BackgroundTokensRunIndependently) {
  IoScheduler sched(1);
  const uint32_t st = sched.RegisterStations(1);
  const uint32_t bg = sched.AddBackgroundToken();
  sched.BeginTxn();
  sched.OnIo(st, 100);
  sched.EndTxn();
  sched.BeginBackground(bg, 1000);
  sched.OnIo(st, 50);
  const SimNanos done = sched.EndBackground();
  EXPECT_EQ(done, 1050u);  // started no earlier than 1000
  EXPECT_EQ(sched.txns_completed(), 1u);  // background is not a txn
}

TEST(SchedulerTest, AdvanceAllTokensActsAsBarrier) {
  IoScheduler sched(2);
  sched.BeginTxn();
  sched.OnCpu(10);
  sched.EndTxn();
  sched.AdvanceAllTokens(5000);
  sched.BeginTxn();
  sched.OnCpu(1);
  EXPECT_EQ(sched.EndTxn(), 5001u);
}

}  // namespace
}  // namespace face
