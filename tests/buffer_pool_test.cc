// Unit tests: buffer pool LRU behavior, pin discipline, dirty/fdirty flag
// protocol, WAL-before-data, eviction through the cache extension, victim
// pulling.
#include <gtest/gtest.h>

#include <memory>

#include "buffer/buffer_pool.h"
#include "tests/test_util.h"

namespace face {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_dev_ = std::make_unique<SimDevice>("db", DeviceProfile::Seagate15k(),
                                          4096);
    log_dev_ = std::make_unique<SimDevice>("log", DeviceProfile::Seagate15k(),
                                           1 << 16);
    storage_ = std::make_unique<DbStorage>(db_dev_.get());
    log_ = std::make_unique<LogManager>(log_dev_.get());
    FACE_ASSERT_OK(log_->Format());
    cache_ = std::make_unique<NullCache>(storage_.get());
    pool_ = std::make_unique<BufferPool>(8, storage_.get(), log_.get(),
                                         cache_.get());
  }

  std::unique_ptr<SimDevice> db_dev_, log_dev_;
  std::unique_ptr<DbStorage> storage_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<CacheExtension> cache_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BufferPoolTest, NewPageIsFormattedAndPinned) {
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, pool_->NewPage());
  EXPECT_EQ(page.page_id(), 0u);
  EXPECT_EQ(page.view().page_id(), 0u);
  EXPECT_EQ(pool_->pinned_frames(), 1u);
  page.Release();
  EXPECT_EQ(pool_->pinned_frames(), 0u);
}

TEST_F(BufferPoolTest, FetchHitsAfterFirstFetch) {
  {
    FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, pool_->NewPage());
    memcpy(page.data() + kPageHeaderSize, "data", 4);
    page.MarkDirty(kInvalidLsn);
  }
  FACE_ASSERT_OK(pool_->FlushAllToDisk());
  const uint64_t hits = pool_->stats().hits;
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle again, pool_->FetchPage(0));
  EXPECT_EQ(pool_->stats().hits, hits + 1);
  EXPECT_EQ(memcmp(again.data() + kPageHeaderSize, "data", 4), 0);
}

TEST_F(BufferPoolTest, VirginFetchIsNotFound) {
  EXPECT_TRUE(pool_->FetchPage(99).status().IsNotFound());
}

TEST_F(BufferPoolTest, EvictionWritesDirtyPagesToDisk) {
  // Dirty one page, then flood the pool to force its eviction.
  {
    FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, pool_->NewPage());
    memcpy(page.data() + kPageHeaderSize, "persist me", 10);
    page.MarkDirty(kInvalidLsn);
  }
  for (int i = 0; i < 10; ++i) {
    FACE_ASSERT_OK(pool_->NewPage().status());
  }
  EXPECT_GT(pool_->stats().dirty_evictions, 0u);
  // The page must come back from disk with its content.
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle back, pool_->FetchPage(0));
  EXPECT_EQ(memcmp(back.data() + kPageHeaderSize, "persist me", 10), 0);
}

TEST_F(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle pinned, pool_->NewPage());
  memcpy(pinned.data() + kPageHeaderSize, "pinned", 6);
  for (int i = 0; i < 20; ++i) {
    FACE_ASSERT_OK(pool_->NewPage().status());
  }
  // Still valid and untouched.
  EXPECT_EQ(memcmp(pinned.data() + kPageHeaderSize, "pinned", 6), 0);
}

TEST_F(BufferPoolTest, AllPinnedReportsBusy) {
  std::vector<PageHandle> pins;
  for (int i = 0; i < 8; ++i) {
    FACE_ASSERT_OK_AND_ASSIGN(PageHandle p, pool_->NewPage());
    pins.push_back(std::move(p));
  }
  EXPECT_TRUE(pool_->NewPage().status().IsBusy());
}

TEST_F(BufferPoolTest, WalForcedBeforeDirtyPageLeaves) {
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, pool_->NewPage());
  // Simulate a logged update at LSN 9000 without flushing the WAL.
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.txn_id = 1;
  rec.page_id = page.page_id();
  rec.before = "b";
  rec.after = "a";
  const Lsn lsn = log_->Append(&rec);
  page.MarkDirty(lsn);
  EXPECT_EQ(page.view().lsn(), lsn);
  page.Release();
  EXPECT_LE(log_->durable_lsn(), lsn);  // record not yet durable
  // Eviction must force the WAL through the pageLSN first.
  for (int i = 0; i < 10; ++i) FACE_ASSERT_OK(pool_->NewPage().status());
  EXPECT_GT(log_->durable_lsn(), lsn);
}

TEST_F(BufferPoolTest, MarkDirtySetsFlagsAndRecLsn) {
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, pool_->NewPage());
  page.MarkDirty(500);
  // recLSN = first dirtying LSN; later updates do not move it.
  page.MarkDirty(900);
  auto dpt = pool_->CollectDirtyPages();
  ASSERT_EQ(dpt.size(), 1u);
  EXPECT_EQ(dpt[0].page_id, page.page_id());
  EXPECT_EQ(dpt[0].rec_lsn, 500u);
  EXPECT_EQ(page.view().lsn(), 900u);
}

TEST_F(BufferPoolTest, PullVictimSurrendersLruTail) {
  std::vector<PageId> created;
  for (int i = 0; i < 4; ++i) {
    FACE_ASSERT_OK_AND_ASSIGN(PageHandle p, pool_->NewPage());
    p.MarkDirty(kInvalidLsn);
    created.push_back(p.page_id());
  }
  std::string buf(kPageSize, '\0');
  bool dirty = false, fdirty = false;
  Lsn rec_lsn = kInvalidLsn;
  const PageId victim = pool_->PullVictim(buf.data(), &dirty, &fdirty,
                                          &rec_lsn);
  EXPECT_EQ(victim, created[0]);  // LRU order
  EXPECT_TRUE(dirty);
  EXPECT_EQ(PageView(buf.data()).page_id(), victim);
  EXPECT_EQ(pool_->pages_in_pool(), 3u);
}

TEST_F(BufferPoolTest, EvictAllEmptiesUnpinnedFrames) {
  for (int i = 0; i < 5; ++i) FACE_ASSERT_OK(pool_->NewPage().status());
  FACE_ASSERT_OK(pool_->EvictAll());
  EXPECT_EQ(pool_->pages_in_pool(), 0u);
}

TEST_F(BufferPoolTest, MoveSemanticsOfHandles) {
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle a, pool_->NewPage());
  EXPECT_EQ(pool_->pinned_frames(), 1u);
  PageHandle b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing it
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(pool_->pinned_frames(), 1u);
  b.Release();
  EXPECT_EQ(pool_->pinned_frames(), 0u);
}

}  // namespace
}  // namespace face
