// Unit tests: FaCE mvFIFO replacement (Algorithm 1 of the paper),
// Group Replacement, Group Second Chance, persistent metadata, and
// crash restores — including ring-wrap cases.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>

#include "core/face_cache.h"
#include "tests/test_util.h"

namespace face {
namespace {

class FaceCacheTest : public ::testing::Test {
 protected:
  void Init(FaceOptions options) {
    options_ = options;
    db_dev_ = std::make_unique<SimDevice>("db", DeviceProfile::Raid0Seagate(8),
                                          1 << 16);
    storage_ = std::make_unique<DbStorage>(db_dev_.get());
    layout_ = FlashLayout::Compute(options.n_frames, options.seg_entries);
    flash_ = std::make_unique<SimDevice>(
        "flash", DeviceProfile::MlcSamsung470(), layout_.total_blocks);
    cache_ = std::make_unique<FaceCache>(options_, flash_.get(),
                                         storage_.get());
    FACE_ASSERT_OK(cache_->Format());
  }

  /// Rebuild the cache object over the surviving flash device (crash).
  void Reboot() {
    cache_ = std::make_unique<FaceCache>(options_, flash_.get(),
                                         storage_.get());
    FACE_ASSERT_OK(cache_->RecoverAfterCrash());
  }

  /// A page image with `page_id` and a recognizable payload.
  std::string MakePage(PageId page_id, char fill = 'p', Lsn lsn = 10) {
    std::string page(kPageSize, '\0');
    PageView v(page.data());
    v.Format(page_id);
    v.set_lsn(lsn);
    memset(v.payload(), fill, 64);
    return page;
  }

  /// Evict helper: page with the given flags enters the cache.
  Status Evict(PageId page_id, bool dirty, bool fdirty, char fill = 'p',
               Lsn lsn = 10) {
    std::string page = MakePage(page_id, fill, lsn);
    return cache_->OnDramEvict(page_id, page.data(), dirty, fdirty, lsn);
  }

  FaceOptions options_;
  FlashLayout layout_;
  std::unique_ptr<SimDevice> db_dev_, flash_;
  std::unique_ptr<DbStorage> storage_;
  std::unique_ptr<FaceCache> cache_;
};

TEST_F(FaceCacheTest, DirtyEvictionIsCachedAndReadBack) {
  Init(FaceOptions::Base(16));
  FACE_ASSERT_OK(Evict(5, true, true, 'x'));
  EXPECT_TRUE(cache_->Contains(5));
  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK_AND_ASSIGN(FlashReadResult r, cache_->ReadPage(5, &out[0]));
  EXPECT_TRUE(r.dirty);
  EXPECT_EQ(out[kPageHeaderSize], 'x');
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

TEST_F(FaceCacheTest, ConditionalEnqueueSkipsCleanDuplicates) {
  Init(FaceOptions::Base(16));
  FACE_ASSERT_OK(Evict(5, false, true));  // first copy enters
  const uint64_t enqueues = cache_->stats().enqueues;
  // Clean re-eviction of an already-cached page: no new version.
  FACE_ASSERT_OK(Evict(5, false, false));
  EXPECT_EQ(cache_->stats().enqueues, enqueues);
  // fdirty re-eviction: unconditional, invalidates the old version.
  FACE_ASSERT_OK(Evict(5, true, true));
  EXPECT_EQ(cache_->stats().enqueues, enqueues + 1);
  EXPECT_EQ(cache_->stats().invalidations, 1u);
  EXPECT_EQ(cache_->valid_pages(), 1u);
  EXPECT_EQ(cache_->live_entries(), 2u);  // two versions, one valid
  EXPECT_GT(cache_->DuplicateRatio(), 0.0);
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

TEST_F(FaceCacheTest, DequeueWritesOnlyValidDirtyToDisk) {
  Init(FaceOptions::Base(4));
  // Fill with 2 versions of page 1 (first invalid) + 2 clean pages.
  FACE_ASSERT_OK(Evict(1, true, true, 'a'));
  FACE_ASSERT_OK(Evict(1, true, true, 'b'));
  FACE_ASSERT_OK(Evict(2, false, true, 'c'));
  FACE_ASSERT_OK(Evict(3, false, true, 'd'));
  // Cache full: next enqueue dequeues the invalid version of 1 -> no disk
  // write; then the valid dirty version -> one disk write.
  const uint64_t disk0 = cache_->stats().disk_writes;
  FACE_ASSERT_OK(Evict(4, false, true));
  EXPECT_EQ(cache_->stats().disk_writes, disk0);
  FACE_ASSERT_OK(Evict(5, false, true));
  EXPECT_EQ(cache_->stats().disk_writes, disk0 + 1);
  // The written copy must be the newest version ('b').
  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK(storage_->ReadPage(1, out.data()));
  EXPECT_EQ(out[kPageHeaderSize], 'b');
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

TEST_F(FaceCacheTest, WritesAreSequentialOnFlash) {
  Init(FaceOptions::Base(64));
  for (PageId p = 0; p < 200; ++p) {
    FACE_ASSERT_OK(Evict(p % 90, true, true));
  }
  const DeviceStats& st = flash_->stats();
  // The mvFIFO append pattern: nearly all frame writes classify sequential
  // (the exceptions: the superblock, the first frame, and one jump per
  // ring wrap-around).
  EXPECT_GE(st.seq_write_reqs + 8, st.write_reqs);
  EXPECT_GT(st.seq_write_reqs, st.write_reqs * 9 / 10);
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

TEST_F(FaceCacheTest, GroupReplacementBatchesIo) {
  FaceOptions gr = FaceOptions::GroupReplace(64);
  gr.group_size = 16;
  Init(gr);
  for (PageId p = 0; p < 300; ++p) {
    FACE_ASSERT_OK(Evict(p, true, true));
  }
  // Batched staging: device write requests are far fewer than pages.
  const DeviceStats& st = flash_->stats();
  EXPECT_LT(st.write_reqs, st.pages_written / 8);
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

/// Pull source faking a DRAM buffer with a fixed stock of victims.
class FakePullSource : public DramPullSource {
 public:
  explicit FakePullSource(PageId first) : next_(first) {}
  PageId PullVictim(char* page, bool* dirty, bool* fdirty,
                    Lsn* rec_lsn) override {
    if (remaining_ == 0) return kInvalidPageId;
    --remaining_;
    const PageId id = next_++;
    PageView v(page);
    v.Format(id);
    v.set_lsn(5);
    *dirty = true;
    *fdirty = true;
    *rec_lsn = 5;
    ++pulled;
    return id;
  }
  void Stock(uint32_t n) { remaining_ = n; }
  uint32_t pulled = 0;

 private:
  PageId next_;
  uint32_t remaining_ = 0;
};

TEST_F(FaceCacheTest, SecondChanceReenqueuesReferencedPages) {
  FaceOptions gsc = FaceOptions::GroupSecondChance(32);
  gsc.group_size = 8;
  Init(gsc);
  for (PageId p = 0; p < 32; ++p) FACE_ASSERT_OK(Evict(p, true, true));
  // Reference pages 0..3 (they sit at the front).
  std::string out(kPageSize, '\0');
  for (PageId p = 0; p < 4; ++p) {
    FACE_ASSERT_OK(cache_->ReadPage(p, out.data()).status());
  }
  // Trigger a replacement: the referenced front pages survive.
  FACE_ASSERT_OK(Evict(100, true, true));
  for (PageId p = 0; p < 4; ++p) {
    EXPECT_TRUE(cache_->Contains(p)) << "page " << p;
  }
  EXPECT_GE(cache_->stats().second_chances, 4u);
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

TEST_F(FaceCacheTest, GscPullsVictimsToFillBatches) {
  FaceOptions gsc = FaceOptions::GroupSecondChance(32);
  gsc.group_size = 8;
  Init(gsc);
  FakePullSource pull(1000);
  cache_->SetPullSource(&pull);
  for (PageId p = 0; p < 32; ++p) FACE_ASSERT_OK(Evict(p, true, true));
  pull.Stock(6);
  FACE_ASSERT_OK(Evict(100, true, true));  // replacement pulls to fill
  EXPECT_GT(pull.pulled, 0u);
  EXPECT_EQ(cache_->stats().pulled_from_dram, pull.pulled);
  for (PageId p = 1000; p < 1000 + pull.pulled; ++p) {
    EXPECT_TRUE(cache_->Contains(p));
  }
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

TEST_F(FaceCacheTest, MetadataSegmentsFlushOnCadence) {
  FaceOptions o = FaceOptions::Base(64);
  o.seg_entries = 16;
  Init(o);
  const uint64_t meta0 = cache_->stats().meta_flash_writes;
  for (PageId p = 0; p < 16; ++p) FACE_ASSERT_OK(Evict(p, true, true));
  // One segment (+superblock) must have been persisted at the boundary.
  EXPECT_GT(cache_->stats().meta_flash_writes, meta0);
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

TEST_F(FaceCacheTest, RecoversPersistedStateAfterCrash) {
  FaceOptions o = FaceOptions::Base(64);
  o.seg_entries = 16;
  Init(o);
  for (PageId p = 0; p < 40; ++p) {
    FACE_ASSERT_OK(Evict(p, true, true, static_cast<char>('A' + p % 26)));
  }
  Reboot();
  EXPECT_EQ(cache_->valid_pages(), 40u);
  const auto& info = cache_->recovery_info();
  EXPECT_EQ(info.persisted_segments_read, 2u);  // 32 entries persisted
  EXPECT_GT(info.rebuilt_frames_scanned, 0u);   // the 8-entry remainder
  // Every page reads back with its payload.
  std::string out(kPageSize, '\0');
  for (PageId p = 0; p < 40; ++p) {
    ASSERT_TRUE(cache_->Contains(p)) << "page " << p;
    FACE_ASSERT_OK_AND_ASSIGN(FlashReadResult r, cache_->ReadPage(p, &out[0]));
    EXPECT_EQ(out[kPageHeaderSize], static_cast<char>('A' + p % 26));
    EXPECT_TRUE(r.dirty);  // restored conservatively dirty or truly dirty
  }
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

TEST_F(FaceCacheTest, RecoversAfterRingWrap) {
  FaceOptions o = FaceOptions::Base(32);
  o.seg_entries = 8;
  Init(o);
  // Wrap the ring several times; disk absorbs dequeued dirty pages.
  for (int round = 0; round < 4; ++round) {
    for (PageId p = 0; p < 40; ++p) {
      FACE_ASSERT_OK(Evict(p, true, true,
                           static_cast<char>('a' + round)));
    }
  }
  Reboot();
  FACE_ASSERT_OK(cache_->CheckInvariants());
  EXPECT_LE(cache_->live_entries(), 32u);
  // Every cached page must serve a validating read; every page must be
  // current (either the cached newest version or the disk copy).
  std::string out(kPageSize, '\0');
  for (PageId p = 0; p < 40; ++p) {
    if (cache_->Contains(p)) {
      FACE_ASSERT_OK(cache_->ReadPage(p, out.data()).status());
      EXPECT_EQ(out[kPageHeaderSize], 'd') << "page " << p;
    }
  }
}

TEST_F(FaceCacheTest, RecoverOnFreshDeviceIsColdStart) {
  Init(FaceOptions::Base(16));
  flash_->Erase();  // nothing persisted at all
  Reboot();
  EXPECT_EQ(cache_->valid_pages(), 0u);
  FACE_ASSERT_OK(Evict(1, true, true));
  EXPECT_TRUE(cache_->Contains(1));
}

TEST_F(FaceCacheTest, CheckpointPageAbsorbsIntoFlash) {
  Init(FaceOptions::Base(16));
  std::string page = MakePage(9, 'k', 77);
  const uint64_t disk0 = cache_->stats().disk_writes;
  FACE_ASSERT_OK_AND_ASSIGN(bool absorbed,
                            cache_->CheckpointPage(9, page.data(), 77));
  EXPECT_TRUE(absorbed);
  EXPECT_EQ(cache_->stats().disk_writes, disk0);
  EXPECT_TRUE(cache_->Contains(9));
  FACE_ASSERT_OK(cache_->OnCheckpoint());  // staging forced to flash
}

TEST_F(FaceCacheTest, WriteThroughAblationAlsoWritesDisk) {
  FaceOptions o = FaceOptions::Base(16);
  o.write_through = true;
  Init(o);
  FACE_ASSERT_OK(Evict(3, true, true, 'w'));
  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK(storage_->ReadPage(3, out.data()));  // disk current
  EXPECT_EQ(out[kPageHeaderSize], 'w');
  EXPECT_TRUE(cache_->Contains(3));  // and cached
}

TEST_F(FaceCacheTest, DirtyOnlyAblationSkipsCleanPages) {
  FaceOptions o = FaceOptions::Base(16);
  o.cache_clean = false;
  Init(o);
  FACE_ASSERT_OK(Evict(1, false, false, 'c'));
  EXPECT_FALSE(cache_->Contains(1));
  FACE_ASSERT_OK(Evict(2, true, true, 'd'));
  EXPECT_TRUE(cache_->Contains(2));
}

TEST_F(FaceCacheTest, CleanOnlyAblationWritesDirtyToDisk) {
  FaceOptions o = FaceOptions::Base(16);
  o.cache_dirty = false;
  Init(o);
  FACE_ASSERT_OK(Evict(1, true, true, 'd'));
  EXPECT_FALSE(cache_->Contains(1));
  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK(storage_->ReadPage(1, out.data()));
  EXPECT_EQ(out[kPageHeaderSize], 'd');
}

TEST_F(FaceCacheTest, CleanOnlyAblationInvalidatesStaleFlashCopy) {
  FaceOptions o = FaceOptions::Base(16);
  o.cache_dirty = false;
  Init(o);
  // A clean copy enters the cache; the page is then re-dirtied and evicted
  // to disk. The flash copy is stale and must never be served again.
  FACE_ASSERT_OK(Evict(7, false, true, 'o'));
  ASSERT_TRUE(cache_->Contains(7));
  FACE_ASSERT_OK(Evict(7, true, true, 'n'));
  EXPECT_FALSE(cache_->Contains(7));
  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK(storage_->ReadPage(7, out.data()));
  EXPECT_EQ(out[kPageHeaderSize], 'n');
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

// Property sweep: random traffic against every FaCE flavor keeps internal
// invariants and never loses the newest version of a page.
struct FaceFlavor {
  const char* name;
  bool gr, gsc;
};

class FaceCacheProperty : public FaceCacheTest,
                          public ::testing::WithParamInterface<FaceFlavor> {};

TEST_P(FaceCacheProperty, RandomTrafficKeepsNewestVersionReachable) {
  FaceOptions o = FaceOptions::Base(48);
  o.group_replace = GetParam().gr;
  o.second_chance = GetParam().gsc;
  o.group_size = 8;
  o.seg_entries = 16;
  Init(o);

  Random rnd(99);
  std::map<PageId, char> newest;  // model: last dirty payload per page
  for (int i = 0; i < 2000; ++i) {
    const PageId p = rnd.Uniform(100);
    const char fill = static_cast<char>('a' + rnd.Uniform(26));
    const bool dirty = rnd.PercentTrue(70);
    if (dirty) {
      FACE_ASSERT_OK(Evict(p, true, true, fill, /*lsn=*/10 + i));
      newest[p] = fill;
    } else if (newest.count(p) != 0) {
      // Clean re-eviction of the same content the cache already has.
      FACE_ASSERT_OK(Evict(p, false, false, newest[p], 10 + i));
    }
    if (i % 250 == 0) FACE_ASSERT_OK(cache_->CheckInvariants());
  }
  FACE_ASSERT_OK(cache_->CheckInvariants());

  // Every page: the current version is either cached (matching payload) or
  // on disk (matching payload) — never lost, never stale.
  std::string out(kPageSize, '\0');
  for (const auto& [p, fill] : newest) {
    if (cache_->Contains(p)) {
      FACE_ASSERT_OK(cache_->ReadPage(p, out.data()).status());
    } else {
      FACE_ASSERT_OK(storage_->ReadPage(p, out.data()));
    }
    EXPECT_EQ(out[kPageHeaderSize], fill) << "page " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Flavors, FaceCacheProperty,
    ::testing::Values(FaceFlavor{"base", false, false},
                      FaceFlavor{"GR", true, false},
                      FaceFlavor{"GSC", true, true}),
    [](const ::testing::TestParamInfo<FaceFlavor>& pinfo) {
      return pinfo.param.name;
    });

}  // namespace
}  // namespace face
