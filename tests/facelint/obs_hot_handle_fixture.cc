// facelint fixture: obs-hot-handle fires on string-keyed metric lookups
// outside a registration/setup function — the src/obs cardinal rule is
// resolve-once, then hit the cached handle on the hot path.
// FACELINT-FIXTURE-PATH: src/engine/obs_handle_fixture.cc

namespace face {

class Registry;

void HotPath(Registry& reg) {
  auto* c = reg.GetCounter("engine.commits");  // EXPECT-FINDING: obs-hot-handle
  (void)c;
}

void RegisterEngineObs(Registry& reg) {
  // Setup-named functions (Obs/Register/Init/Setup/Bind) may resolve.
  auto* c = reg.GetCounter("engine.commits");
  (void)c;
}

void CachedHotPath(Registry& reg) {
  // A static/thread_local initializer resolves once by construction.
  static auto* c = reg.GetCounter("engine.commits");
  (void)c;
}

}  // namespace face
