// facelint fixture: the inline escape. An explicit
// `// facelint: allow(<rule>)` on the finding line or the line above
// suppresses the finding while still counting it in --stats as allowed.
// FACELINT-FIXTURE-PATH: src/core/allow_escape_fixture.cc
#include <chrono>

namespace face {

unsigned long HostStampForLogsOnly() {
  // facelint: allow(no-wallclock-sim) fixture proves the inline escape
  auto t = std::chrono::steady_clock::now();  // EXPECT-ALLOWED: no-wallclock-sim
  return static_cast<unsigned long>(t.time_since_epoch().count());
}

}  // namespace face
