// facelint fixture: the same banned containers OUTSIDE the simulated-state
// scope (src/buffer, src/core, src/engine, src/recovery) produce no
// no-unordered-sim findings — src/sim is not in the rule's scope. The
// selftest asserts this file lints clean.
// FACELINT-FIXTURE-PATH: src/sim/unordered_scope_fixture.cc
#include <unordered_map>

namespace face {

void HostSideBookkeeping() {
  std::unordered_map<int, int> fine_here;
  (void)fine_here;
}

}  // namespace face
