// facelint fixture: baseline suppression. The sidecar file
// baseline_suppression_fixture.baseline carries an entry keyed on the
// (rule, fixture path, exact stripped line text) of the include below;
// the selftest asserts the finding is reported without the baseline and
// suppressed (with exit code 0) when the baseline is supplied, and that
// a baseline entry matching nothing is a hard error.
// FACELINT-FIXTURE-PATH: src/core/baseline_suppression_fixture.cc
#include <list>  // EXPECT-FINDING: no-unordered-sim

namespace face {}
