// facelint fixture: mark-dirty-range fires when a function writes frame
// payload bytes (through a PageHandle's data() or a pointer derived from
// it) with no MarkDirtyRange call in the same function — the delta chain
// introduced by the page-differential write-back silently degrades to
// whole-page tracking.
// FACELINT-FIXTURE-PATH: src/engine/dirty_range_fixture.cc
#include <cstring>

namespace face {

class PageHandle;
class BufferPool;

void BadDirectWrite(PageHandle& h, const char* src) {
  char* p = h.data();
  memcpy(p, src, 16);  // EXPECT-FINDING: mark-dirty-range
}

void BadSubscriptStore(PageHandle& h) {
  char* p = h.data();
  p[0] = 1;  // EXPECT-FINDING: mark-dirty-range
}

void BadFactoryWrite(BufferPool& pool) {
  auto h = pool.FetchPage(7);
  char* p = h->data();
  p[3] = 9;  // EXPECT-FINDING: mark-dirty-range
}

void GoodPairedWrite(PageHandle& h, const char* src) {
  char* p = h.data();
  memcpy(p, src, 16);
  h.MarkDirtyRange(/*lsn=*/1, /*off=*/0, /*len=*/16);
}

void GoodReadOnly(PageHandle& h, char* out) {
  // The frame is the SOURCE; copying payload bytes out is not a mutation.
  memcpy(out, h.data(), 16);
}

}  // namespace face
