// facelint fixture: no-wallclock-sim fires on host clocks and host
// randomness anywhere under src/; simulated state must derive from
// virtual time and seeded PRNGs only.
// FACELINT-FIXTURE-PATH: src/core/wallclock_fixture.cc
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace face {

unsigned long Positive() {
  auto t0 = std::chrono::steady_clock::now();  // EXPECT-FINDING: no-wallclock-sim
  int r = rand();                              // EXPECT-FINDING: no-wallclock-sim
  long w = time(nullptr);                      // EXPECT-FINDING: no-wallclock-sim
  (void)t0;
  return static_cast<unsigned long>(r) + static_cast<unsigned long>(w);
}

struct TpccRandom {
  int Next() { return 4; }
};

struct Workload {
  // Declarations whose name merely collides with a host function are not
  // calls: neither line below may produce a finding.
  TpccRandom& random() { return rnd_; }
  TpccRandom rnd_;
};

int Negative(Workload& w) {
  // Member access is not a host call either.
  return w.random().Next();
}

}  // namespace face
