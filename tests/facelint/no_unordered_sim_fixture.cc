// facelint fixture: no-unordered-sim fires on banned containers/headers
// inside the simulated-state directories. Never compiled — linted only
// (see tools/facelint/selftest.py).
// FACELINT-FIXTURE-PATH: src/core/unordered_fixture.cc
#include <unordered_map>  // EXPECT-FINDING: no-unordered-sim
#include <vector>

namespace face {

void Positive() {
  std::unordered_map<int, int> by_hash;  // EXPECT-FINDING: no-unordered-sim
  std::set<int> ordered;                 // EXPECT-FINDING: no-unordered-sim
  std::list<int> linked;                 // EXPECT-FINDING: no-unordered-sim
  (void)by_hash;
  (void)ordered;
  (void)linked;
}

void Negative() {
  // The sanctioned containers: sorted vector (and PageMap / IntrusiveList /
  // LazyMinHeap in the real tree). std::map is ordered and key-deterministic.
  std::vector<int> sorted_ids;
  (void)sorted_ids;
}

}  // namespace face
