// facelint fixture: no-pointer-order fires on ordered/hashed containers
// keyed on raw pointers and on pointer-to-integer casts — both are
// ASLR-nondeterministic across runs.
// FACELINT-FIXTURE-PATH: src/core/ptr_order_fixture.cc
#include <cstdint>
#include <map>

namespace face {

struct Frame;

void Positive(Frame* f) {
  std::map<Frame*, int> by_addr;              // EXPECT-FINDING: no-pointer-order
  auto key = reinterpret_cast<uintptr_t>(f);  // EXPECT-FINDING: no-pointer-order
  (void)by_addr;
  (void)key;
}

void Negative() {
  // Pointer VALUES are fine; pointer KEYS are not. Keying on a stable id
  // keeps iteration order reproducible under ASLR.
  std::map<int, Frame*> by_id;
  (void)by_id;
}

}  // namespace face
