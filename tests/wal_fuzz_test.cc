// Property tests: the WAL's torn-tail handling. A crash can cut the log at
// ANY byte; Attach + scanning must always terminate cleanly at a record
// boundary no later than the cut, never crash, never fabricate records,
// and recovery over the truncated log must still restore exactly the
// committed prefix.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "recovery/restart.h"
#include "tests/test_util.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace face {
namespace {

/// Overwrite the log device with garbage from stream offset `cut` onward
/// (a torn write: the tail blocks were in flight when power failed).
/// Routed through the fault subsystem's torn-tail primitive so the fuzz
/// corpus and the live crash injector share one corruption model.
void TearLogAt(SimDevice* dev, Lsn cut, char junk) {
  FACE_ASSERT_OK(FaultInjector::TearWalTail(dev, cut, junk,
                                            /*garble_blocks=*/3));
}

class WalTearingTest : public ::testing::TestWithParam<int> {};

TEST_P(WalTearingTest, AttachStopsAtBoundaryNoLaterThanCut) {
  SimDevice dev("log", DeviceProfile::Seagate15k(), 1 << 16);
  LogManager log(&dev);
  FACE_ASSERT_OK(log.Format());

  // A realistic record stream with varying sizes.
  Random rnd(GetParam());
  std::vector<Lsn> boundaries;
  for (int i = 0; i < 200; ++i) {
    LogRecord rec;
    rec.type = LogRecordType::kUpdate;
    rec.txn_id = 1 + rnd.Uniform(4);
    rec.page_id = rnd.Uniform(1000);
    rec.before = rnd.AlphaString(0, 120);
    rec.after = rnd.AlphaString(0, 120);
    boundaries.push_back(log.Append(&rec));
  }
  FACE_ASSERT_OK(log.FlushAll());
  const Lsn end = log.next_lsn();

  // Tear at a random point within the stream (three flavors of junk:
  // zeros from never-written blocks, 0xFF, and plausible ASCII).
  const Lsn cut = LogManager::kLogStartLsn +
                  rnd.Uniform(end - LogManager::kLogStartLsn);
  const char junk[] = {'\0', '\xff', 'A'};
  TearLogAt(&dev, cut, junk[GetParam() % 3]);

  LogManager fresh(&dev);
  FACE_ASSERT_OK(fresh.Attach());
  EXPECT_LE(fresh.next_lsn(), cut);
  // The end found must be a genuine record boundary.
  bool is_boundary = fresh.next_lsn() == LogManager::kLogStartLsn;
  for (Lsn b : boundaries) is_boundary = is_boundary || fresh.next_lsn() == b;
  EXPECT_TRUE(is_boundary) << "end " << fresh.next_lsn() << " cut " << cut;

  // Scanning must enumerate exactly the records before the found end.
  LogReader reader(&dev);
  FACE_ASSERT_OK(reader.Seek(LogManager::kLogStartLsn));
  Lsn pos = LogManager::kLogStartLsn;
  while (true) {
    auto rec = reader.Next();
    if (!rec.ok()) break;
    EXPECT_EQ(rec->lsn, pos);
    pos = reader.position();
  }
  EXPECT_EQ(pos, fresh.next_lsn());

  // And the log must accept appends after the tear.
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn_id = 9;
  fresh.Append(&rec);
  FACE_ASSERT_OK(fresh.FlushAll());
}

INSTANTIATE_TEST_SUITE_P(CutPoints, WalTearingTest,
                         ::testing::Range(1, 13));

class WalSectorTearTest : public ::testing::TestWithParam<int> {};

TEST_P(WalSectorTearTest, TailRecordTornExactlyAtSectorBoundary) {
  // The injector's live model: sector writes are atomic, so a torn log
  // flush cuts the stream at a 512-byte sector boundary. Find a record
  // that straddles such a boundary, cut exactly there, and verify Attach
  // lands exactly at that record's start — everything before is intact,
  // the straddler is gone whole.
  SimDevice dev("log", DeviceProfile::Seagate15k(), 1 << 16);
  LogManager log(&dev);
  FACE_ASSERT_OK(log.Format());

  Random rnd(GetParam() * 131);
  std::vector<std::pair<Lsn, Lsn>> records;  // [start, end) per record
  for (int i = 0; i < 200; ++i) {
    LogRecord rec;
    rec.type = LogRecordType::kUpdate;
    rec.txn_id = 1 + rnd.Uniform(4);
    rec.page_id = rnd.Uniform(1000);
    rec.before = rnd.AlphaString(0, 120);
    rec.after = rnd.AlphaString(0, 120);
    const Lsn start = log.Append(&rec);
    records.emplace_back(start, log.next_lsn());
  }
  FACE_ASSERT_OK(log.FlushAll());

  // Pick a record (past the first few) that straddles a sector boundary.
  Lsn straddler_start = kInvalidLsn;
  Lsn cut = 0;
  for (size_t i = 5; i < records.size(); ++i) {
    const auto [start, end] = records[i];
    const Lsn boundary = (start / kSectorSize + 1) * kSectorSize;
    if (boundary > start && boundary < end) {
      straddler_start = start;
      cut = boundary;
      break;
    }
  }
  ASSERT_NE(straddler_start, kInvalidLsn)
      << "corpus produced no sector-straddling record";
  ASSERT_EQ(cut % kSectorSize, 0u);

  // The cut is sector-aligned, so the shared torn-tail primitive keeps
  // exactly whole sectors and junks the rest.
  FACE_ASSERT_OK(FaultInjector::TearWalTail(&dev, cut, '\x6b',
                                            /*garble_blocks=*/3));

  LogManager fresh(&dev);
  FACE_ASSERT_OK(fresh.Attach());
  EXPECT_EQ(fresh.next_lsn(), straddler_start)
      << "attach must stop exactly where the sector-torn record began "
         "(cut=" << cut << ")";

  // Every record before the straddler scans back intact.
  LogReader reader(&dev);
  FACE_ASSERT_OK(reader.Seek(LogManager::kLogStartLsn));
  Lsn pos = LogManager::kLogStartLsn;
  uint64_t scanned = 0;
  while (true) {
    auto rec = reader.Next();
    if (!rec.ok()) break;
    EXPECT_EQ(rec->lsn, pos);
    pos = reader.position();
    ++scanned;
  }
  EXPECT_EQ(pos, straddler_start);
  uint64_t expected = 0;
  for (const auto& [start, end] : records) {
    (void)start;
    if (end <= straddler_start) ++expected;
  }
  EXPECT_EQ(scanned, expected);

  // And appending over the junk tail works.
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn_id = 9;
  fresh.Append(&rec);
  FACE_ASSERT_OK(fresh.FlushAll());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalSectorTearTest, ::testing::Range(1, 7));

class TornRecoveryTest : public EngineFixture,
                         public ::testing::WithParamInterface<int> {
 protected:
  void SetUp() override { Init(); }
};

TEST_P(TornRecoveryTest, CommittedPrefixSurvivesAnyTear) {
  // Commit a sequence of recognizable updates, each forced at commit.
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, db_->pool()->NewPage());
  const PageId pid = page.page_id();
  page.Release();
  std::vector<Lsn> commit_ends;
  for (int i = 0; i < 12; ++i) {
    const TxnId txn = db_->Begin();
    auto p = db_->pool()->FetchPage(pid);
    ASSERT_TRUE(p.ok());
    char value = static_cast<char>('A' + i);
    FACE_ASSERT_OK(db_->txns()->Update(
        txn, &p.value(), static_cast<uint16_t>(kPageHeaderSize + i), &value,
        1));
    FACE_ASSERT_OK(db_->Commit(txn));
    commit_ends.push_back(log_->durable_lsn());
  }

  // Tear the log somewhere in the middle of the stream.
  Random rnd(GetParam() * 77);
  const Lsn cut = commit_ends[2] +
                  rnd.Uniform(commit_ends.back() - commit_ends[2]);
  TearLogAt(log_dev_.get(), cut, GetParam() % 2 == 0 ? '\0' : '\x5a');

  // Count how many commits survived entirely below the cut.
  int expected = 0;
  for (const Lsn end : commit_ends) {
    if (end <= cut) ++expected;
  }

  CrashAndRecover();
  auto p = db_->pool()->FetchPage(pid);
  ASSERT_TRUE(p.ok());
  for (int i = 0; i < expected; ++i) {
    EXPECT_EQ(p->data()[kPageHeaderSize + i], static_cast<char>('A' + i))
        << "committed update " << i << " lost (cut=" << cut << ")";
  }
  for (int i = expected; i < 12; ++i) {
    // Updates past the tear may only be absent, never half-applied — each
    // was a single byte, so absence means zero.
    const char got = p->data()[kPageHeaderSize + i];
    EXPECT_TRUE(got == 0 || got == static_cast<char>('A' + i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TornRecoveryTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace face
