// Property tests: the WAL's torn-tail handling. A crash can cut the log at
// ANY byte; Attach + scanning must always terminate cleanly at a record
// boundary no later than the cut, never crash, never fabricate records,
// and recovery over the truncated log must still restore exactly the
// committed prefix.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "recovery/restart.h"
#include "tests/test_util.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace face {
namespace {

/// Overwrite the log device with garbage from stream offset `cut` onward
/// (a torn write: the tail blocks were in flight when power failed).
void TearLogAt(SimDevice* dev, Lsn cut, char junk) {
  const uint64_t first_block = cut / kPageSize;
  std::string block(kPageSize, '\0');
  ASSERT_TRUE(dev->Read(first_block, block.data()).ok());
  for (uint32_t i = cut % kPageSize; i < kPageSize; ++i) block[i] = junk;
  ASSERT_TRUE(dev->Write(first_block, block.data()).ok());
  std::string junk_block(kPageSize, junk);
  for (uint64_t b = first_block + 1; b < first_block + 4; ++b) {
    ASSERT_TRUE(dev->Write(b, junk_block.data()).ok());
  }
}

class WalTearingTest : public ::testing::TestWithParam<int> {};

TEST_P(WalTearingTest, AttachStopsAtBoundaryNoLaterThanCut) {
  SimDevice dev("log", DeviceProfile::Seagate15k(), 1 << 16);
  LogManager log(&dev);
  FACE_ASSERT_OK(log.Format());

  // A realistic record stream with varying sizes.
  Random rnd(GetParam());
  std::vector<Lsn> boundaries;
  for (int i = 0; i < 200; ++i) {
    LogRecord rec;
    rec.type = LogRecordType::kUpdate;
    rec.txn_id = 1 + rnd.Uniform(4);
    rec.page_id = rnd.Uniform(1000);
    rec.before = rnd.AlphaString(0, 120);
    rec.after = rnd.AlphaString(0, 120);
    boundaries.push_back(log.Append(&rec));
  }
  FACE_ASSERT_OK(log.FlushAll());
  const Lsn end = log.next_lsn();

  // Tear at a random point within the stream (three flavors of junk:
  // zeros from never-written blocks, 0xFF, and plausible ASCII).
  const Lsn cut = LogManager::kLogStartLsn +
                  rnd.Uniform(end - LogManager::kLogStartLsn);
  const char junk[] = {'\0', '\xff', 'A'};
  TearLogAt(&dev, cut, junk[GetParam() % 3]);

  LogManager fresh(&dev);
  FACE_ASSERT_OK(fresh.Attach());
  EXPECT_LE(fresh.next_lsn(), cut);
  // The end found must be a genuine record boundary.
  bool is_boundary = fresh.next_lsn() == LogManager::kLogStartLsn;
  for (Lsn b : boundaries) is_boundary = is_boundary || fresh.next_lsn() == b;
  EXPECT_TRUE(is_boundary) << "end " << fresh.next_lsn() << " cut " << cut;

  // Scanning must enumerate exactly the records before the found end.
  LogReader reader(&dev);
  FACE_ASSERT_OK(reader.Seek(LogManager::kLogStartLsn));
  Lsn pos = LogManager::kLogStartLsn;
  while (true) {
    auto rec = reader.Next();
    if (!rec.ok()) break;
    EXPECT_EQ(rec->lsn, pos);
    pos = reader.position();
  }
  EXPECT_EQ(pos, fresh.next_lsn());

  // And the log must accept appends after the tear.
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn_id = 9;
  fresh.Append(&rec);
  FACE_ASSERT_OK(fresh.FlushAll());
}

INSTANTIATE_TEST_SUITE_P(CutPoints, WalTearingTest,
                         ::testing::Range(1, 13));

class TornRecoveryTest : public EngineFixture,
                         public ::testing::WithParamInterface<int> {
 protected:
  void SetUp() override { Init(); }
};

TEST_P(TornRecoveryTest, CommittedPrefixSurvivesAnyTear) {
  // Commit a sequence of recognizable updates, each forced at commit.
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, db_->pool()->NewPage());
  const PageId pid = page.page_id();
  page.Release();
  std::vector<Lsn> commit_ends;
  for (int i = 0; i < 12; ++i) {
    const TxnId txn = db_->Begin();
    auto p = db_->pool()->FetchPage(pid);
    ASSERT_TRUE(p.ok());
    char value = static_cast<char>('A' + i);
    FACE_ASSERT_OK(db_->txns()->Update(
        txn, &p.value(), static_cast<uint16_t>(kPageHeaderSize + i), &value,
        1));
    FACE_ASSERT_OK(db_->Commit(txn));
    commit_ends.push_back(log_->durable_lsn());
  }

  // Tear the log somewhere in the middle of the stream.
  Random rnd(GetParam() * 77);
  const Lsn cut = commit_ends[2] +
                  rnd.Uniform(commit_ends.back() - commit_ends[2]);
  TearLogAt(log_dev_.get(), cut, GetParam() % 2 == 0 ? '\0' : '\x5a');

  // Count how many commits survived entirely below the cut.
  int expected = 0;
  for (const Lsn end : commit_ends) {
    if (end <= cut) ++expected;
  }

  CrashAndRecover();
  auto p = db_->pool()->FetchPage(pid);
  ASSERT_TRUE(p.ok());
  for (int i = 0; i < expected; ++i) {
    EXPECT_EQ(p->data()[kPageHeaderSize + i], static_cast<char>('A' + i))
        << "committed update " << i << " lost (cut=" << cut << ")";
  }
  for (int i = expected; i < 12; ++i) {
    // Updates past the tear may only be absent, never half-applied — each
    // was a single byte, so absence means zero.
    const char got = p->data()[kPageHeaderSize + i];
    EXPECT_TRUE(got == 0 || got == static_cast<char>('A' + i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TornRecoveryTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace face
