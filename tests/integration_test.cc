// Cross-module integration: a bank-transfer workload (the classic atomicity
// torture test) on the full engine with a FaCE flash cache, random
// checkpoints, and repeated crashes. The invariant: total money is
// conserved and matches an in-memory model of committed transfers only.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/face_cache.h"
#include "engine/btree.h"
#include "engine/heap_file.h"
#include "engine/key_codec.h"
#include "tests/test_util.h"
#include "tpcc/schema.h"

namespace face {
namespace {

constexpr uint32_t kAccounts = 400;
constexpr int64_t kInitialBalance = 1000;

class BankFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db_dev_ = std::make_unique<SimDevice>("db", DeviceProfile::Raid0Seagate(8),
                                          1 << 15);
    log_dev_ = std::make_unique<SimDevice>("log", DeviceProfile::Seagate15k(),
                                           1 << 20);
    flash_dev_ = std::make_unique<SimDevice>(
        "flash", DeviceProfile::MlcSamsung470(),
        FlashLayout::Compute(256, 64).total_blocks);
    BuildStack(/*fresh=*/true);
    FACE_ASSERT_OK(db_->Format());

    PageWriter bulk;
    FACE_ASSERT_OK_AND_ASSIGN(accounts_,
                              db_->CreateTable(&bulk, "accounts"));
    FACE_ASSERT_OK_AND_ASSIGN(index_, db_->CreateIndex(&bulk, "pk_accounts"));
    for (uint32_t a = 0; a < kAccounts; ++a) {
      char row[12];
      EncodeFixed32(row, a);
      EncodeFixed64(row + 4, static_cast<uint64_t>(kInitialBalance));
      FACE_ASSERT_OK_AND_ASSIGN(
          Rid rid, accounts_.Insert(&bulk, std::string_view(row, 12)));
      FACE_ASSERT_OK(index_.Insert(&bulk, KeyCodec().AppendU32(a).Take(),
                                   tpcc::EncodeRid(rid)));
      model_[a] = kInitialBalance;
    }
    FACE_ASSERT_OK(db_->CleanShutdown());
  }

  void BuildStack(bool fresh) {
    storage_ = std::make_unique<DbStorage>(db_dev_.get());
    log_ = std::make_unique<LogManager>(log_dev_.get());
    FaceOptions fo = FaceOptions::GroupSecondChance(256);
    fo.seg_entries = 64;
    fo.group_size = 16;
    auto face = std::make_unique<FaceCache>(fo, flash_dev_.get(),
                                            storage_.get());
    if (fresh) {
      FACE_ASSERT_OK(face->Format());
    }
    cache_ = std::move(face);
    DatabaseOptions opts;
    opts.buffer_frames = 48;  // tiny: constant eviction traffic
    db_ = std::make_unique<Database>(opts, storage_.get(), log_.get(),
                                     cache_.get());
  }

  void Crash() {
    db_.reset();
    cache_.reset();
    log_.reset();
    storage_.reset();
    BuildStack(/*fresh=*/false);
    auto report = db_->Recover();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    auto acc = db_->OpenTable("accounts");
    ASSERT_TRUE(acc.ok());
    accounts_ = std::move(acc.value());
    auto idx = db_->OpenIndex("pk_accounts");
    ASSERT_TRUE(idx.ok());
    index_ = std::move(idx.value());
  }

  int64_t ReadBalance(uint32_t account) {
    std::string value, row;
    EXPECT_TRUE(index_.Get(KeyCodec().AppendU32(account).Take(), &value).ok());
    EXPECT_TRUE(accounts_.Read(tpcc::DecodeRid(value), &row).ok());
    return static_cast<int64_t>(DecodeFixed64(row.data() + 4));
  }

  /// Transfer `amount` from `from` to `to`; optionally leave uncommitted.
  Status Transfer(uint32_t from, uint32_t to, int64_t amount, bool commit) {
    const TxnId txn = db_->Begin();
    PageWriter w = db_->Writer(txn);
    for (auto [account, delta] :
         {std::pair{from, -amount}, std::pair{to, amount}}) {
      std::string value, row;
      FACE_RETURN_IF_ERROR(
          index_.Get(KeyCodec().AppendU32(account).Take(), &value));
      const Rid rid = tpcc::DecodeRid(value);
      FACE_RETURN_IF_ERROR(accounts_.Read(rid, &row));
      const int64_t balance =
          static_cast<int64_t>(DecodeFixed64(row.data() + 4)) + delta;
      EncodeFixed64(row.data() + 4, static_cast<uint64_t>(balance));
      FACE_RETURN_IF_ERROR(accounts_.Update(&w, rid, row));
    }
    if (!commit) return log_->FlushAll();  // leave in-flight, records durable
    FACE_RETURN_IF_ERROR(db_->Commit(txn));
    model_[from] -= amount;
    model_[to] += amount;
    return Status::OK();
  }

  void VerifyAgainstModel() {
    int64_t total = 0;
    for (uint32_t a = 0; a < kAccounts; ++a) {
      const int64_t balance = ReadBalance(a);
      EXPECT_EQ(balance, model_[a]) << "account " << a;
      total += balance;
    }
    EXPECT_EQ(total, static_cast<int64_t>(kAccounts) * kInitialBalance);
  }

  std::unique_ptr<SimDevice> db_dev_, log_dev_, flash_dev_;
  std::unique_ptr<DbStorage> storage_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<CacheExtension> cache_;
  std::unique_ptr<Database> db_;
  HeapFile accounts_;
  BPlusTree index_;
  std::map<uint32_t, int64_t> model_;
};

TEST_F(BankFixture, MoneyConservedAcrossRandomCrashes) {
  Random rnd(2024);
  for (int round = 0; round < 5; ++round) {
    // A burst of committed transfers with occasional checkpoints.
    for (int i = 0; i < 150; ++i) {
      const uint32_t from = static_cast<uint32_t>(rnd.Uniform(kAccounts));
      uint32_t to = static_cast<uint32_t>(rnd.Uniform(kAccounts));
      if (to == from) to = (to + 1) % kAccounts;
      FACE_ASSERT_OK(Transfer(from, to, rnd.UniformRange(1, 50), true));
      if (rnd.PercentTrue(5)) {
        FACE_ASSERT_OK(db_->TakeCheckpoint().status());
      }
    }
    // A few in-flight transfers that must vanish.
    for (int i = 0; i < 3; ++i) {
      FACE_ASSERT_OK(Transfer(static_cast<uint32_t>(rnd.Uniform(kAccounts)),
                              static_cast<uint32_t>(rnd.Uniform(kAccounts)),
                              999, false));
    }
    Crash();
    VerifyAgainstModel();
    FACE_ASSERT_OK(cache_->CheckInvariants());
    FACE_ASSERT_OK(index_.CheckInvariants());
  }
}

TEST_F(BankFixture, ExplicitAbortsRollBackImmediately) {
  Random rnd(7);
  for (int i = 0; i < 50; ++i) {
    const TxnId txn = db_->Begin();
    PageWriter w = db_->Writer(txn);
    std::string value, row;
    const uint32_t account = static_cast<uint32_t>(rnd.Uniform(kAccounts));
    FACE_ASSERT_OK(
        index_.Get(KeyCodec().AppendU32(account).Take(), &value));
    const Rid rid = tpcc::DecodeRid(value);
    FACE_ASSERT_OK(accounts_.Read(rid, &row));
    EncodeFixed64(row.data() + 4, 0xDEAD);
    FACE_ASSERT_OK(accounts_.Update(&w, rid, row));
    FACE_ASSERT_OK(db_->Abort(txn));
  }
  VerifyAgainstModel();
}

TEST_F(BankFixture, CheckpointsDoNotDisturbConsistency) {
  Random rnd(13);
  for (int i = 0; i < 30; ++i) {
    FACE_ASSERT_OK(Transfer(i % kAccounts, (i + 7) % kAccounts, 10, true));
    FACE_ASSERT_OK(db_->TakeCheckpoint().status());
  }
  VerifyAgainstModel();
  // A crash right after heavy checkpointing recovers instantly but fully.
  Crash();
  VerifyAgainstModel();
}

}  // namespace
}  // namespace face
