// Checkpointing under crashes: the LC staging path (PrepareCheckpoint must
// push flash-resident dirty pages to disk before the checkpoint is
// advertised), and crashes landing between CHECKPOINT_BEGIN and
// CHECKPOINT_END — restart must fall back to the previous complete
// checkpoint and still restore every committed transaction.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/lc_cache.h"
#include "fault/diff_checker.h"
#include "fault/fault_injector.h"
#include "fault/shadow_kv.h"
#include "recovery/restart.h"
#include "testbed/testbed.h"
#include "tests/test_util.h"

namespace face {
namespace {

/// A small shadow-tracked testbed over one policy, shared by the tests
/// below: update-heavy so flash-resident dirty state builds up fast.
struct ShadowRig {
  std::shared_ptr<fault::ShadowState> shadow;
  std::shared_ptr<fault::ShadowKvFactory> factory;
  GoldenImage golden;
  std::unique_ptr<Testbed> tb;

  Status Build(CachePolicy policy, uint64_t seed) {
    fault::ShadowKvOptions wo;
    wo.records = 600;
    wo.value_bytes = 160;
    shadow = std::make_shared<fault::ShadowState>();
    factory = std::make_shared<fault::ShadowKvFactory>(wo, shadow);
    shadow->Reset(wo.records, wo.value_bytes);
    FACE_ASSIGN_OR_RETURN(golden, GoldenImage::BuildFor(factory));

    TestbedOptions to;
    to.clients = 4;
    to.seed = seed;
    to.workload = factory;
    // Smaller than the ~45-page working set, so evictions continuously
    // push (dirty) pages into the flash tier.
    to.buffer_frames = 24;
    to.flash_pages = 384;
    to.seg_entries = 128;
    to.policy = policy;
    tb = std::make_unique<Testbed>(to, &golden);
    return tb->Start();
  }

  Status RunOps(uint64_t n) {
    RunOptions run;
    run.txns = n;
    return tb->Run(run).status();
  }

  StatusOr<fault::DiffReport> Check() {
    return fault::RunDifferentialCheck(*tb->db(), shadow.get(), tb->cache());
  }
};

TEST(LcCheckpointTest, PrepareCheckpointStagesDirtyFlashPagesToDisk) {
  ShadowRig rig;
  FACE_ASSERT_OK(rig.Build(CachePolicy::kLc, /*seed=*/11));
  FACE_ASSERT_OK(rig.RunOps(300));

  auto* lc = dynamic_cast<LcCache*>(rig.tb->cache());
  ASSERT_NE(lc, nullptr);
  ASSERT_GT(lc->dirty_pages(), 0u)
      << "update-heavy run should leave dirty pages in the LC cache";

  const uint64_t disk_writes_before = lc->stats().disk_writes;
  FACE_ASSERT_OK(rig.tb->db()->TakeCheckpoint().status());
  EXPECT_EQ(lc->dirty_pages(), 0u)
      << "PrepareCheckpoint must stage every flash-dirty page to disk";
  EXPECT_GT(lc->stats().disk_writes, disk_writes_before);

  // The checkpoint's guarantee: a crash right after it needs no flash
  // contents at all. LC restarts cold and the state must still match.
  FACE_ASSERT_OK(rig.tb->Crash());  // invalidates `lc`
  FACE_ASSERT_OK(rig.tb->Recover().status());
  auto* lc2 = dynamic_cast<LcCache*>(rig.tb->cache());
  ASSERT_NE(lc2, nullptr);
  EXPECT_EQ(lc2->cached_pages(), 0u) << "LC must restart cold";
  FACE_ASSERT_OK_AND_ASSIGN(fault::DiffReport diff, rig.Check());
  EXPECT_TRUE(diff.ok()) << diff.ToString();
}

TEST(CheckpointCrashTest, CrashMidCheckpointFallsBackToPreviousOne) {
  ShadowRig rig;
  FACE_ASSERT_OK(rig.Build(CachePolicy::kFace, /*seed=*/23));
  FACE_ASSERT_OK(rig.RunOps(150));

  // A complete checkpoint, then more committed work.
  FACE_ASSERT_OK_AND_ASSIGN(Lsn complete_ckpt,
                            rig.tb->db()->TakeCheckpoint());
  FACE_ASSERT_OK(rig.RunOps(120));

  // Crash a few writes into the next checkpoint: after its BEGIN exists
  // but before its END could be logged and advertised.
  FaultInjector inj;
  inj.AttachScheduler(rig.tb->sched());
  inj.SetTearGranularity(rig.tb->db_dev()->id(), TearGranularity::kPageAtomic);
  rig.tb->db_dev()->set_fault_injector(&inj);
  rig.tb->log_dev()->set_fault_injector(&inj);
  rig.tb->flash_dev()->set_fault_injector(&inj);
  // The first write a checkpoint issues necessarily happens after BEGIN was
  // appended and before END could become durable.
  inj.ArmAfterWrites(1, /*seed=*/99);

  const Status mid = rig.tb->db()->TakeCheckpoint().status();
  ASSERT_FALSE(mid.ok()) << "checkpoint should have been cut by the crash";
  ASSERT_TRUE(inj.tripped()) << mid.ToString();

  FACE_ASSERT_OK(rig.tb->Crash());
  inj.Disarm();
  FACE_ASSERT_OK_AND_ASSIGN(RestartReport report, rig.tb->Recover());
  EXPECT_EQ(report.checkpoint_lsn, complete_ckpt)
      << "restart must use the previous complete checkpoint";

  FACE_ASSERT_OK_AND_ASSIGN(fault::DiffReport diff, rig.Check());
  EXPECT_TRUE(diff.ok()) << diff.ToString();
  // And the recovered system keeps working.
  FACE_ASSERT_OK(rig.RunOps(40));
}

class EngineCheckpointCrashTest : public EngineFixture {
 protected:
  void SetUp() override { Init(/*db_pages=*/4096, /*buffer_frames=*/32); }

  void CommitWrite(PageId page_id, uint16_t offset, const std::string& data) {
    const TxnId txn = db_->Begin();
    auto page = db_->pool()->FetchPage(page_id);
    ASSERT_TRUE(page.ok());
    FACE_ASSERT_OK(db_->txns()->Update(txn, &page.value(), offset,
                                       data.data(),
                                       static_cast<uint32_t>(data.size())));
    FACE_ASSERT_OK(db_->Commit(txn));
  }
};

TEST_F(EngineCheckpointCrashTest, ControlBlockAdvancesOnlyAfterEnd) {
  std::vector<PageId> pages;
  for (int i = 0; i < 5; ++i) {
    FACE_ASSERT_OK_AND_ASSIGN(PageHandle p, db_->pool()->NewPage());
    pages.push_back(p.page_id());
  }
  for (PageId p : pages) CommitWrite(p, kPageHeaderSize, "before-ck1");
  FACE_ASSERT_OK_AND_ASSIGN(Lsn ckpt1, db_->TakeCheckpoint());
  for (PageId p : pages) CommitWrite(p, kPageHeaderSize + 16, "after-ck1!");

  FaultInjector inj;
  db_dev_->set_fault_injector(&inj);
  log_dev_->set_fault_injector(&inj);
  inj.SetTearGranularity("db", TearGranularity::kPageAtomic);
  inj.ArmAfterWrites(3, /*seed=*/7);

  ASSERT_FALSE(db_->TakeCheckpoint().ok());
  ASSERT_TRUE(inj.tripped());
  inj.Disarm();

  // The incomplete checkpoint never reached the control block.
  FACE_ASSERT_OK_AND_ASSIGN(Lsn recorded, log_->ReadControlBlock());
  EXPECT_EQ(recorded, ckpt1);

  // Restart: recovery must start from ckpt1 and restore all commits.
  db_.reset();
  cache_.reset();
  log_.reset();
  storage_.reset();
  storage_ = std::make_unique<DbStorage>(db_dev_.get());
  log_ = std::make_unique<LogManager>(log_dev_.get());
  cache_ = std::make_unique<NullCache>(storage_.get());
  DatabaseOptions opts;
  opts.buffer_frames = 32;
  db_ = std::make_unique<Database>(opts, storage_.get(), log_.get(),
                                   cache_.get());
  FACE_ASSERT_OK_AND_ASSIGN(RestartReport report, db_->Recover());
  EXPECT_EQ(report.checkpoint_lsn, ckpt1);

  for (PageId p : pages) {
    FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, db_->pool()->FetchPage(p));
    EXPECT_EQ(std::string(page.data() + kPageHeaderSize, 10), "before-ck1");
    EXPECT_EQ(std::string(page.data() + kPageHeaderSize + 16, 10),
              "after-ck1!");
  }
}

}  // namespace
}  // namespace face
