// Unit tests: the crash injector's device-level semantics — countdown
// precision, batch cuts, sector-prefix tears, page-atomic drops, dead
// devices, and the aftermath-surgery primitives.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/tac_cache.h"
#include "fault/fault_injector.h"
#include "sim/sim_device.h"
#include "storage/page.h"
#include "tests/test_util.h"

namespace face {
namespace {

std::string PageOf(char fill) { return std::string(kPageSize, fill); }

TEST(FaultInjectorTest, CountdownTripsOnExactlyTheNthWrite) {
  SimDevice dev("d", DeviceProfile::Seagate15k(), 128);
  FaultInjector inj;
  dev.set_fault_injector(&inj);
  inj.SetTearGranularity("d", TearGranularity::kPageAtomic);
  inj.ArmAfterWrites(3, /*seed=*/1);

  FACE_ASSERT_OK(dev.Write(0, PageOf('a').data()));
  FACE_ASSERT_OK(dev.Write(1, PageOf('b').data()));
  const Status s = dev.Write(2, PageOf('c').data());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(inj.tripped());
  EXPECT_EQ(inj.site().device, "d");
  EXPECT_EQ(inj.site().block, 2u);

  // The first two writes persisted; the crash-point page dropped whole.
  std::string buf(kPageSize, '\0');
  inj.Disarm();
  FACE_ASSERT_OK(dev.Read(0, buf.data()));
  EXPECT_EQ(buf[0], 'a');
  FACE_ASSERT_OK(dev.Read(1, buf.data()));
  EXPECT_EQ(buf[100], 'b');
  FACE_ASSERT_OK(dev.Read(2, buf.data()));
  EXPECT_EQ(buf[0], '\0');
}

TEST(FaultInjectorTest, RearmAfterTripRevivesTheDeviceAndCountdown) {
  // Crash-during-recovery storms re-arm a tripped injector without an
  // intervening Disarm: the new countdown must start clean — trip state
  // cleared, dead device revived, and the ordinal exact again.
  SimDevice dev("d", DeviceProfile::Seagate15k(), 128);
  FaultInjector inj;
  dev.set_fault_injector(&inj);
  inj.SetTearGranularity("d", TearGranularity::kPageAtomic);
  inj.ArmAfterWrites(1, /*seed=*/1);
  EXPECT_TRUE(dev.Write(0, PageOf('a').data()).IsIOError());
  ASSERT_TRUE(inj.tripped());

  inj.ArmAfterWrites(2, /*seed=*/2);  // no Disarm in between
  EXPECT_FALSE(inj.tripped());
  FACE_ASSERT_OK(dev.Write(1, PageOf('b').data()));  // device is alive again
  const Status s = dev.Write(2, PageOf('c').data());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(inj.tripped());
  EXPECT_EQ(inj.site().block, 2u);
  inj.Disarm();
}

TEST(FaultInjectorTest, BatchWriteIsCutMidRequest) {
  SimDevice dev("d", DeviceProfile::Seagate15k(), 128);
  FaultInjector inj;
  dev.set_fault_injector(&inj);
  // Countdown 3 into a 5-page batch: 2 full pages persist, page 3 keeps a
  // sector prefix, pages 4-5 never land.
  inj.ArmAfterWrites(3, /*seed=*/42);

  std::string batch;
  for (char c : {'1', '2', '3', '4', '5'}) batch += PageOf(c);
  EXPECT_TRUE(dev.WriteBatch(10, 5, batch.data()).IsIOError());
  ASSERT_TRUE(inj.tripped());
  EXPECT_EQ(inj.site().pages_persisted, 2u);
  EXPECT_LT(inj.site().sectors_persisted, kSectorsPerPage);

  inj.Disarm();
  std::string buf(kPageSize, '\0');
  FACE_ASSERT_OK(dev.Read(10, buf.data()));
  EXPECT_EQ(buf[kPageSize - 1], '1');
  FACE_ASSERT_OK(dev.Read(11, buf.data()));
  EXPECT_EQ(buf[kPageSize - 1], '2');
  // The torn page: exactly the persisted sector prefix is new.
  FACE_ASSERT_OK(dev.Read(12, buf.data()));
  const uint32_t cut = inj.site().sectors_persisted * kSectorSize;
  for (uint32_t i = 0; i < cut; ++i) ASSERT_EQ(buf[i], '3') << i;
  for (uint32_t i = cut; i < kPageSize; ++i) ASSERT_EQ(buf[i], '\0') << i;
  FACE_ASSERT_OK(dev.Read(13, buf.data()));
  EXPECT_EQ(buf[0], '\0');
}

TEST(FaultInjectorTest, TornPageKeepsOldContentsBeyondTheCut) {
  SimDevice dev("d", DeviceProfile::Seagate15k(), 128);
  FACE_ASSERT_OK(dev.Write(7, PageOf('o').data()));  // pre-crash contents

  FaultInjector inj;
  dev.set_fault_injector(&inj);
  inj.ArmAfterWrites(1, /*seed=*/9);
  EXPECT_TRUE(dev.Write(7, PageOf('n').data()).IsIOError());
  ASSERT_TRUE(inj.tripped());

  inj.Disarm();
  std::string buf(kPageSize, '\0');
  FACE_ASSERT_OK(dev.Read(7, buf.data()));
  const uint32_t cut = inj.site().sectors_persisted * kSectorSize;
  for (uint32_t i = 0; i < cut; ++i) ASSERT_EQ(buf[i], 'n') << i;
  for (uint32_t i = cut; i < kPageSize; ++i) ASSERT_EQ(buf[i], 'o') << i;
}

TEST(FaultInjectorTest, DeadDeviceFailsAllIoUntilDisarm) {
  SimDevice dev("d", DeviceProfile::Seagate15k(), 128);
  FaultInjector inj;
  dev.set_fault_injector(&inj);
  inj.ArmAfterWrites(1, /*seed=*/3);
  EXPECT_TRUE(dev.Write(0, PageOf('x').data()).IsIOError());

  std::string buf(kPageSize, '\0');
  EXPECT_TRUE(dev.Read(0, buf.data()).IsIOError());
  EXPECT_TRUE(dev.Write(1, PageOf('y').data()).IsIOError());

  inj.Disarm();
  FACE_ASSERT_OK(dev.Read(0, buf.data()));
  FACE_ASSERT_OK(dev.Write(1, PageOf('y').data()));
}

TEST(FaultInjectorTest, DeadlineModeTripsAtVirtualTime) {
  IoScheduler sched(2);
  SimDevice dev("d", DeviceProfile::Seagate15k(), 128, &sched);
  FaultInjector inj;
  inj.AttachScheduler(&sched);
  dev.set_fault_injector(&inj);

  // Accumulate some virtual time, then arm just past it.
  sched.BeginTxn();
  FACE_ASSERT_OK(dev.Write(0, PageOf('a').data()));
  sched.EndTxn();
  inj.ArmAtTime(sched.now() + 1, /*seed=*/5);

  sched.BeginTxn();
  FACE_ASSERT_OK(dev.Write(1, PageOf('b').data()));  // now() still behind
  sched.EndTxn();
  // The completed transaction advanced now() past the deadline.
  EXPECT_TRUE(dev.Write(2, PageOf('c').data()).IsIOError());
  EXPECT_TRUE(inj.tripped());
}

TEST(TacTornRefreshTest, RecoverySweepDropsTornInPlaceRefresh) {
  // TAC's write-through eviction refreshes a cached frame in place without
  // touching its (already validated) directory entry. A crash tearing that
  // refresh leaves the directory advertising a frame that fails its
  // checksum; the recovery sweep must drop the slot instead of serving
  // Corruption on the first read. Deterministic regression for the rare
  // storm path (flash crashes are a small minority of crash points).
  SimDevice db_dev("db", DeviceProfile::Seagate15k(), 256);
  DbStorage storage(&db_dev);
  TacOptions to;
  to.n_frames = 8;
  SimDevice flash("flash", DeviceProfile::MlcSamsung470(),
                  TacCache::DeviceBlocksFor(to.n_frames));
  TacCache tac(to, &flash, &storage);
  FACE_ASSERT_OK(tac.Format());

  // Admit a page on entry (frame write + directory validation persist).
  const PageId pid = 5;
  std::string page(kPageSize, '\0');
  PageView view(page.data());
  view.Format(pid);
  memset(page.data() + kPageHeaderSize, 'v', 64);
  FACE_ASSERT_OK(tac.OnFetchFromDisk(pid, page.data()));
  ASSERT_TRUE(tac.Contains(pid));

  // Dirty eviction: disk write succeeds, the in-place flash refresh is
  // torn mid-page (1..7 sectors). Arm the injector on the flash device
  // only, so the countdown cannot land on the disk write.
  memset(page.data() + kPageHeaderSize, 'w', kPageSize - kPageHeaderSize);
  view.set_lsn(12345);
  FaultInjector inj;
  flash.set_fault_injector(&inj);
  uint64_t seed = 1;
  while (true) {  // find a seed whose tear keeps 1..7 sectors
    inj.ArmAfterWrites(1, seed);
    std::string evicted = page;
    const Status s = tac.OnDramEvict(pid, evicted.data(), /*dirty=*/true,
                                     /*fdirty=*/true, /*rec_lsn=*/12345);
    ASSERT_FALSE(s.ok());
    ASSERT_TRUE(inj.tripped());
    if (inj.site().sectors_persisted > 0) break;
    // K=0 dropped the refresh whole, leaving the old (valid) frame: retry
    // the eviction under the next seed until the tear is mid-page.
    inj.Disarm();
    ++seed;
  }
  inj.Disarm();

  // Restart: the sweep must notice the torn frame and free the slot.
  FACE_ASSERT_OK(tac.RecoverAfterCrash());
  EXPECT_FALSE(tac.Contains(pid))
      << "recovery kept a directory entry for a checksum-invalid frame";
  FACE_ASSERT_OK(tac.CheckInvariants());

  // And the invalidation is durable: a second restart agrees.
  FACE_ASSERT_OK(tac.RecoverAfterCrash());
  EXPECT_FALSE(tac.Contains(pid));
}

TEST(FaultInjectorTest, AftermathPrimitives) {
  SimDevice dev("d", DeviceProfile::Seagate15k(), 128);
  FACE_ASSERT_OK(dev.Write(5, PageOf('k').data()));
  FACE_ASSERT_OK(dev.Write(6, PageOf('k').data()));

  FACE_ASSERT_OK(FaultInjector::TearBlockSectors(&dev, 5, 3, '\x5a'));
  std::string buf(kPageSize, '\0');
  FACE_ASSERT_OK(dev.Read(5, buf.data()));
  for (uint32_t i = 0; i < 3 * kSectorSize; ++i) ASSERT_EQ(buf[i], 'k') << i;
  for (uint32_t i = 3 * kSectorSize; i < kPageSize; ++i) {
    ASSERT_EQ(buf[i], '\x5a') << i;
  }

  FACE_ASSERT_OK(FaultInjector::GarbleBlocks(&dev, 6, 1, '\xff'));
  FACE_ASSERT_OK(dev.Read(6, buf.data()));
  EXPECT_EQ(buf[0], '\xff');
  EXPECT_EQ(buf[kPageSize - 1], '\xff');

  // Surgery charges no stats and no time.
  EXPECT_EQ(dev.stats().write_reqs, 2u);
}

// --- transient-fault layer + retry/backoff ---------------------------------

TEST(TransientFaultTest, StickyBurstWithinBudgetIsRetriedToSuccess) {
  // Seed 10 makes the first permille-500 draw fail (37) and the following
  // draws pass (803, 505, ...): with a sticky window of 1 the first write
  // fails twice (trigger + sticky) and succeeds on the third attempt —
  // inside the default 4-attempt budget, so the caller never sees an error.
  SimDevice dev("d", DeviceProfile::Seagate15k(), 128);
  FaultInjector inj;
  dev.set_fault_injector(&inj);
  TransientFaultProfile p;
  p.write_fail_permille = 500;
  p.sticky_failures = 1;
  p.seed = 10;
  inj.ArmTransient("d", p);

  FACE_ASSERT_OK(dev.Write(0, PageOf('a').data()));
  EXPECT_FALSE(dev.failed());
  EXPECT_EQ(dev.stats().retries, 2u);
  // Default policy: 100 us before the first retry, x4 before the second.
  const IoRetryPolicy policy;
  EXPECT_EQ(dev.stats().backoff_ns,
            policy.BackoffFor(1) + policy.BackoffFor(2));
  EXPECT_EQ(inj.transient_failures_on("d"), 2u);

  // The bytes made it to media despite the failed attempts.
  std::string buf(kPageSize, '\0');
  FACE_ASSERT_OK(dev.Read(0, buf.data()));
  EXPECT_EQ(buf[0], 'a');
  // Later writes draw clean and pass on the first attempt.
  FACE_ASSERT_OK(dev.Write(1, PageOf('b').data()));
  EXPECT_EQ(dev.stats().retries, 2u);
}

TEST(TransientFaultTest, ExhaustedRetryBudgetDeclaresTheDeviceLost) {
  SimDevice dev("d", DeviceProfile::Seagate15k(), 128);
  FaultInjector inj;
  dev.set_fault_injector(&inj);
  TransientFaultProfile p;
  p.write_fail_permille = 1000;  // every attempt fails: exhaustion is certain
  p.seed = 3;
  inj.ArmTransient("d", p);

  Status s = dev.Write(0, PageOf('a').data());
  EXPECT_TRUE(s.IsDeviceLost()) << s.ToString();
  EXPECT_TRUE(dev.failed());
  EXPECT_EQ(dev.stats().retries, 3u);  // 4 attempts = 1 + 3 retries

  // Offline devices fail fast: no further attempts, no further RNG draws.
  const uint64_t failures = inj.transient_failures_on("d");
  s = dev.Read(0, PageOf(' ').data());
  EXPECT_TRUE(s.IsDeviceLost());
  EXPECT_EQ(inj.transient_failures_on("d"), failures);

  // Re-attach protocol: disarm first, then reset health.
  inj.DisarmDevice("d");
  dev.ResetHealth();
  FACE_ASSERT_OK(dev.Write(0, PageOf('c').data()));
  EXPECT_FALSE(dev.failed());
}

TEST(TransientFaultTest, KilledDeviceFailsTerminallyWithoutRetries) {
  SimDevice dev("d", DeviceProfile::Seagate15k(), 128);
  FaultInjector inj;
  dev.set_fault_injector(&inj);
  inj.KillDevice("d");

  const Status s = dev.Write(0, PageOf('a').data());
  EXPECT_TRUE(s.IsDeviceLost()) << s.ToString();
  EXPECT_FALSE(s.IsRetryable());
  EXPECT_EQ(dev.stats().retries, 0u);  // terminal verdicts are never retried
  EXPECT_TRUE(dev.failed());
}

TEST(TransientFaultTest, ArmingOneDeviceNeverTouchesAnother) {
  // One injector shared by two devices, the sharded-testbed wiring: arming
  // a profile on "a" must leave "b" entirely unaffected — no failures, no
  // retries, no RNG draws charged to it.
  SimDevice a("a", DeviceProfile::Seagate15k(), 128);
  SimDevice b("b", DeviceProfile::Seagate15k(), 128);
  FaultInjector inj;
  a.set_fault_injector(&inj);
  b.set_fault_injector(&inj);

  TransientFaultProfile p;
  p.write_fail_permille = 1000;
  p.seed = 7;
  inj.ArmTransient("a", p);

  EXPECT_TRUE(a.Write(0, PageOf('a').data()).IsDeviceLost());
  FACE_ASSERT_OK(b.Write(0, PageOf('b').data()));
  EXPECT_TRUE(a.failed());
  EXPECT_FALSE(b.failed());
  EXPECT_EQ(b.stats().retries, 0u);
  EXPECT_EQ(inj.transient_failures_on("b"), 0u);

  // Per-device disarm: "a" recovers without a global Disarm.
  inj.DisarmDevice("a");
  a.ResetHealth();
  FACE_ASSERT_OK(a.Write(1, PageOf('c').data()));
  FACE_ASSERT_OK(b.Write(1, PageOf('d').data()));
}

TEST(TransientFaultTest, LatencySpikesMultiplyServiceTimeDeterministically) {
  // Identical devices, identical request streams; one armed with a
  // certain-fire x8 spike profile. Virtual busy time must scale exactly.
  SimDevice plain("p", DeviceProfile::MlcSamsung470(), 128);
  SimDevice spiked("s", DeviceProfile::MlcSamsung470(), 128);
  FaultInjector inj;
  spiked.set_fault_injector(&inj);
  TransientFaultProfile p;
  p.latency_spike_permille = 1000;
  p.latency_spike_factor = 8;
  p.seed = 11;
  inj.ArmTransient("s", p);

  for (uint64_t b = 0; b < 8; ++b) {
    FACE_ASSERT_OK(plain.Write(b, PageOf('x').data()));
    FACE_ASSERT_OK(spiked.Write(b, PageOf('x').data()));
  }
  EXPECT_GT(plain.stats().busy_ns, 0u);
  EXPECT_EQ(spiked.stats().busy_ns, 8 * plain.stats().busy_ns);
  EXPECT_EQ(spiked.stats().retries, 0u);  // spikes are slow, not failed
}

TEST(TransientFaultTest, AttachedButDisarmedInjectorPerturbsNothing) {
  // The zero-perturbation bar: an injector that is attached but never armed
  // must leave every counter bit-identical to a device with no injector.
  SimDevice bare("d", DeviceProfile::Seagate15k(), 128);
  SimDevice hooked("d2", DeviceProfile::Seagate15k(), 128);
  FaultInjector inj;
  hooked.set_fault_injector(&inj);
  EXPECT_FALSE(inj.transient_active());

  std::string buf(kPageSize, '\0');
  for (uint64_t b = 0; b < 16; ++b) {
    FACE_ASSERT_OK(bare.Write(b, PageOf('z').data()));
    FACE_ASSERT_OK(hooked.Write(b, PageOf('z').data()));
    FACE_ASSERT_OK(bare.Read(b, buf.data()));
    FACE_ASSERT_OK(hooked.Read(b, buf.data()));
  }
  EXPECT_EQ(bare.stats().busy_ns, hooked.stats().busy_ns);
  EXPECT_EQ(bare.stats().seq_write_reqs, hooked.stats().seq_write_reqs);
  EXPECT_EQ(hooked.stats().retries, 0u);
  EXPECT_EQ(hooked.stats().backoff_ns, 0u);
}

}  // namespace
}  // namespace face
