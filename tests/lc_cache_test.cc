// Unit tests: the Lazy Cleaning baseline — LRU-2 victim order, write-back
// with lazy cleaning, checkpoint flush cost, cold restart.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/lc_cache.h"
#include "tests/test_util.h"

namespace face {
namespace {

class LcCacheTest : public ::testing::Test {
 protected:
  void Init(LcOptions options) {
    db_dev_ = std::make_unique<SimDevice>("db", DeviceProfile::Raid0Seagate(8),
                                          1 << 16);
    storage_ = std::make_unique<DbStorage>(db_dev_.get());
    flash_ = std::make_unique<SimDevice>(
        "flash", DeviceProfile::MlcSamsung470(),
        LcCache::DeviceBlocksFor(options.n_frames));
    cache_ = std::make_unique<LcCache>(options, flash_.get(), storage_.get());
  }

  std::string MakePage(PageId page_id, char fill = 'p') {
    std::string page(kPageSize, '\0');
    PageView v(page.data());
    v.Format(page_id);
    v.set_lsn(10);
    memset(v.payload(), fill, 32);
    return page;
  }

  Status Evict(PageId page_id, bool dirty, char fill = 'p') {
    std::string page = MakePage(page_id, fill);
    return cache_->OnDramEvict(page_id, page.data(), dirty, dirty, 42);
  }

  std::unique_ptr<SimDevice> db_dev_, flash_;
  std::unique_ptr<DbStorage> storage_;
  std::unique_ptr<LcCache> cache_;
};

TEST_F(LcCacheTest, KeepsSingleUpToDateCopy) {
  LcOptions o;
  o.n_frames = 8;
  Init(o);
  FACE_ASSERT_OK(Evict(1, true, 'a'));
  FACE_ASSERT_OK(Evict(1, true, 'b'));  // overwrites in place
  EXPECT_EQ(cache_->cached_pages(), 1u);
  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK_AND_ASSIGN(FlashReadResult r, cache_->ReadPage(1, &out[0]));
  EXPECT_TRUE(r.dirty);
  EXPECT_EQ(r.rec_lsn, 42u);  // conservative recLSN survives
  EXPECT_EQ(out[kPageHeaderSize], 'b');
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

TEST_F(LcCacheTest, InPlaceOverwritesAreRandomFlashWrites) {
  LcOptions o;
  o.n_frames = 64;
  Init(o);
  // Steady replacement over a skewed working set with re-references: the
  // LRU-2 victim order diverges from frame-allocation order, so in-place
  // replacement writes scatter across the frame space. (Under a pure
  // one-touch scan LRU degenerates to FIFO and even LC writes
  // sequentially — real workloads are not one-touch scans.)
  Random rnd(31);
  std::string out(kPageSize, '\0');
  for (int i = 0; i < 600; ++i) {
    FACE_ASSERT_OK(Evict(rnd.Uniform(200), true));
    for (int t = 0; t < 3; ++t) {
      const PageId touch = rnd.Uniform(200);
      if (cache_->Contains(touch)) {
        FACE_ASSERT_OK(cache_->ReadPage(touch, out.data()).status());
      }
    }
  }
  const DeviceStats& st = flash_->stats();
  // Most writes are non-sequential — the exact opposite of FaCE's pattern
  // and the core of the paper's comparison.
  EXPECT_LT(st.seq_write_reqs, st.write_reqs / 2);
}

TEST_F(LcCacheTest, Lru2EvictsByPenultimateReference) {
  LcOptions o;
  o.n_frames = 2;
  o.clean_threshold = 2.0;  // cleaner off for this test
  Init(o);
  FACE_ASSERT_OK(Evict(1, false));
  FACE_ASSERT_OK(Evict(2, false));
  // Touch page 1 twice: its penultimate reference is now recent; page 2
  // was referenced once (-inf penultimate) and must be the victim.
  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK(cache_->ReadPage(1, out.data()).status());
  FACE_ASSERT_OK(cache_->ReadPage(1, out.data()).status());
  FACE_ASSERT_OK(Evict(3, false));
  EXPECT_TRUE(cache_->Contains(1));
  EXPECT_FALSE(cache_->Contains(2));
  EXPECT_TRUE(cache_->Contains(3));
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

TEST_F(LcCacheTest, LazyCleanerKicksInAboveThreshold) {
  LcOptions o;
  o.n_frames = 32;
  o.clean_threshold = 0.50;
  o.clean_target = 0.25;
  o.clean_batch = 4;
  Init(o);
  for (PageId p = 0; p < 20; ++p) FACE_ASSERT_OK(Evict(p, true));
  EXPECT_TRUE(cache_->HasBackgroundWork());
  const uint64_t disk0 = cache_->stats().disk_writes;
  while (cache_->HasBackgroundWork()) {
    FACE_ASSERT_OK(cache_->RunBackgroundWork());
  }
  EXPECT_GT(cache_->stats().disk_writes, disk0);
  EXPECT_LE(cache_->DirtyFraction(), 0.30);
  // Cleaned pages remain cached (clean), still readable.
  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK_AND_ASSIGN(FlashReadResult r, cache_->ReadPage(0, &out[0]));
  EXPECT_FALSE(r.dirty);
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

TEST_F(LcCacheTest, EvictingDirtyVictimWritesItToDisk) {
  LcOptions o;
  o.n_frames = 2;
  o.clean_threshold = 2.0;
  Init(o);
  FACE_ASSERT_OK(Evict(1, true, 'z'));
  FACE_ASSERT_OK(Evict(2, true));
  FACE_ASSERT_OK(Evict(3, true));  // evicts page 1 -> disk
  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK(storage_->ReadPage(1, out.data()));
  EXPECT_EQ(out[kPageHeaderSize], 'z');
}

TEST_F(LcCacheTest, PrepareCheckpointFlushesAllDirtyToDisk) {
  LcOptions o;
  o.n_frames = 32;
  o.clean_threshold = 2.0;
  Init(o);
  for (PageId p = 0; p < 10; ++p) FACE_ASSERT_OK(Evict(p, true));
  FACE_ASSERT_OK(cache_->PrepareCheckpoint());
  EXPECT_EQ(cache_->dirty_pages(), 0u);
  std::string out(kPageSize, '\0');
  for (PageId p = 0; p < 10; ++p) {
    FACE_ASSERT_OK(storage_->ReadPage(p, out.data()));
    EXPECT_TRUE(cache_->Contains(p));  // still cached, now clean
  }
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

TEST_F(LcCacheTest, RestartIsCold) {
  LcOptions o;
  o.n_frames = 16;
  o.clean_threshold = 2.0;
  Init(o);
  FACE_ASSERT_OK(Evict(1, true));
  // LC must stage dirty pages to disk before forgetting them — the cache
  // directory is volatile but the data must not be lost.
  FACE_ASSERT_OK(cache_->RecoverAfterCrash());
  EXPECT_EQ(cache_->cached_pages(), 0u);
  EXPECT_FALSE(cache_->Contains(1));
}

TEST_F(LcCacheTest, OnPageWrittenToDiskCleansEntry) {
  LcOptions o;
  o.n_frames = 16;
  o.clean_threshold = 2.0;
  Init(o);
  FACE_ASSERT_OK(Evict(4, true));
  EXPECT_EQ(cache_->dirty_pages(), 1u);
  std::string page = MakePage(4);
  FACE_ASSERT_OK(storage_->WritePage(4, page.data()));
  cache_->OnPageWrittenToDisk(4);
  EXPECT_EQ(cache_->dirty_pages(), 0u);
  FACE_ASSERT_OK(cache_->CheckInvariants());
}

}  // namespace
}  // namespace face
