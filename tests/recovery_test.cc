// Unit tests: checkpointing and ARIES-style restart on the plain engine
// (no flash cache) — atomicity, durability, idempotent redo, CLR handling,
// checkpoint-bounded redo, allocator restoration.
#include <gtest/gtest.h>

#include <string>

#include "recovery/restart.h"
#include "tests/test_util.h"

namespace face {
namespace {

class RecoveryTest : public EngineFixture {
 protected:
  void SetUp() override { Init(); }

  /// One committed byte-range write at `offset` of `page_id`.
  void CommitWrite(PageId page_id, uint16_t offset, const std::string& data) {
    const TxnId txn = db_->Begin();
    auto page = db_->pool()->FetchPage(page_id);
    ASSERT_TRUE(page.ok());
    FACE_ASSERT_OK(db_->txns()->Update(txn, &page.value(), offset,
                                       data.data(),
                                       static_cast<uint32_t>(data.size())));
    FACE_ASSERT_OK(db_->Commit(txn));
  }

  std::string ReadBytes(PageId page_id, uint16_t offset, uint32_t len) {
    auto page = db_->pool()->FetchPage(page_id);
    EXPECT_TRUE(page.ok());
    return std::string(page->data() + offset, len);
  }
};

TEST_F(RecoveryTest, CommittedWorkSurvivesCrash) {
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, db_->pool()->NewPage());
  const PageId pid = page.page_id();
  page.Release();
  CommitWrite(pid, kPageHeaderSize, "committed!");

  CrashAndRecover();
  EXPECT_EQ(ReadBytes(pid, kPageHeaderSize, 10), "committed!");
}

TEST_F(RecoveryTest, UncommittedWorkIsUndone) {
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, db_->pool()->NewPage());
  const PageId pid = page.page_id();
  page.Release();  // CrashAndRecover destroys the pool this handle pins
  CommitWrite(pid, kPageHeaderSize, "baseline--");

  const TxnId loser = db_->Begin();
  {
    FACE_ASSERT_OK_AND_ASSIGN(PageHandle p, db_->pool()->FetchPage(pid));
    FACE_ASSERT_OK(db_->txns()->Update(loser, &p, kPageHeaderSize,
                                       "LOSERLOSER", 10));
  }
  // Leak the loser's records to disk (group-commit co-flush), then force
  // the dirty page itself out (steal) so undo genuinely has work to do.
  FACE_ASSERT_OK(log_->FlushAll());
  FACE_ASSERT_OK(db_->pool()->EvictAll());

  CrashAndRecover();
  EXPECT_EQ(ReadBytes(pid, kPageHeaderSize, 10), "baseline--");
}

TEST_F(RecoveryTest, RestartReportCountsPhases) {
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, db_->pool()->NewPage());
  const PageId pid = page.page_id();
  page.Release();
  for (int i = 0; i < 5; ++i) {
    CommitWrite(pid, static_cast<uint16_t>(kPageHeaderSize + i * 16),
                "record" + std::to_string(i));
  }
  const TxnId loser = db_->Begin();
  {
    FACE_ASSERT_OK_AND_ASSIGN(PageHandle p, db_->pool()->FetchPage(pid));
    FACE_ASSERT_OK(
        db_->txns()->Update(loser, &p, kPageHeaderSize + 200, "xx", 2));
  }
  FACE_ASSERT_OK(log_->FlushAll());

  db_.reset();
  cache_.reset();
  log_.reset();
  storage_.reset();
  storage_ = std::make_unique<DbStorage>(db_dev_.get());
  log_ = std::make_unique<LogManager>(log_dev_.get());
  cache_ = std::make_unique<NullCache>(storage_.get());
  DatabaseOptions opts;
  opts.buffer_frames = 64;
  db_ = std::make_unique<Database>(opts, storage_.get(), log_.get(),
                                   cache_.get());
  FACE_ASSERT_OK_AND_ASSIGN(RestartReport report, db_->Recover());
  EXPECT_GT(report.analysis_records, 0u);
  EXPECT_GT(report.redo_records, 0u);
  EXPECT_EQ(report.losers, 1u);
  EXPECT_EQ(report.undo_records, 1u);
  EXPECT_FALSE(report.ToString().empty());
}

TEST_F(RecoveryTest, RedoIsIdempotentAcrossDoubleCrash) {
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, db_->pool()->NewPage());
  const PageId pid = page.page_id();
  page.Release();
  CommitWrite(pid, kPageHeaderSize, "idempotent");

  CrashAndRecover();
  // Crash again immediately — recovery must replay cleanly a second time.
  CrashAndRecover();
  EXPECT_EQ(ReadBytes(pid, kPageHeaderSize, 10), "idempotent");
}

TEST_F(RecoveryTest, CheckpointBoundsRedoWork) {
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, db_->pool()->NewPage());
  const PageId pid = page.page_id();
  page.Release();
  for (int i = 0; i < 50; ++i) {
    CommitWrite(pid, kPageHeaderSize, "v" + std::to_string(i % 10));
  }
  FACE_ASSERT_OK(db_->TakeCheckpoint().status());
  CommitWrite(pid, kPageHeaderSize + 32, "after-ckpt");

  db_.reset();
  cache_.reset();
  log_.reset();
  storage_.reset();
  storage_ = std::make_unique<DbStorage>(db_dev_.get());
  log_ = std::make_unique<LogManager>(log_dev_.get());
  cache_ = std::make_unique<NullCache>(storage_.get());
  DatabaseOptions opts;
  opts.buffer_frames = 64;
  db_ = std::make_unique<Database>(opts, storage_.get(), log_.get(),
                                   cache_.get());
  FACE_ASSERT_OK_AND_ASSIGN(RestartReport report, db_->Recover());
  // Redo starts at the checkpoint: only the post-checkpoint txn records
  // (begin+update+commit) are scanned, not the 50 pre-checkpoint commits.
  EXPECT_LT(report.redo_records, 10u);
  EXPECT_EQ(ReadBytes(pid, kPageHeaderSize + 32, 10), "after-ckpt");
}

TEST_F(RecoveryTest, CrashDuringAbortFinishesRollback) {
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, db_->pool()->NewPage());
  const PageId pid = page.page_id();
  page.Release();  // CrashAndRecover destroys the pool this handle pins
  CommitWrite(pid, kPageHeaderSize, "0000000000");

  // A transaction writes twice; we emulate a crash half-way through its
  // abort: the first update was already compensated by a CLR (logged),
  // the second was not.
  const TxnId txn = db_->Begin();
  {
    FACE_ASSERT_OK_AND_ASSIGN(PageHandle p, db_->pool()->FetchPage(pid));
    FACE_ASSERT_OK(
        db_->txns()->Update(txn, &p, kPageHeaderSize, "1111111111", 10));
    FACE_ASSERT_OK(
        db_->txns()->Update(txn, &p, kPageHeaderSize + 16, "2222222222", 10));
  }
  FACE_ASSERT_OK(log_->FlushAll());
  FACE_ASSERT_OK(db_->pool()->EvictAll());

  CrashAndRecover();
  // Both updates rolled back.
  EXPECT_EQ(ReadBytes(pid, kPageHeaderSize, 10), "0000000000");
  EXPECT_EQ(ReadBytes(pid, kPageHeaderSize + 16, 10), std::string(10, '\0'));
}

TEST_F(RecoveryTest, AllocatorHighWaterMarkRestored) {
  for (int i = 0; i < 7; ++i) {
    FACE_ASSERT_OK_AND_ASSIGN(PageHandle p, db_->pool()->NewPage());
    CommitWrite(p.page_id(), kPageHeaderSize, "fill");
  }
  const PageId next_before = storage_->next_page_id();
  FACE_ASSERT_OK(db_->TakeCheckpoint().status());

  CrashAndRecover();
  EXPECT_GE(storage_->next_page_id(), next_before);
  // Fresh allocations must not collide with recovered pages.
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle p, db_->pool()->NewPage());
  EXPECT_GE(p.page_id(), next_before);
}

TEST_F(RecoveryTest, CheckpointerRecordsDptAndAtt) {
  FACE_ASSERT_OK_AND_ASSIGN(PageHandle page, db_->pool()->NewPage());
  const TxnId txn = db_->Begin();
  FACE_ASSERT_OK(
      db_->txns()->Update(txn, &page, kPageHeaderSize, "dirty", 5));
  FACE_ASSERT_OK_AND_ASSIGN(Lsn ckpt_lsn, db_->TakeCheckpoint());

  FACE_ASSERT_OK(log_->FlushAll());
  LogReader reader(log_dev_.get());
  FACE_ASSERT_OK(reader.Seek(ckpt_lsn));
  FACE_ASSERT_OK_AND_ASSIGN(LogRecord begin, reader.Next());
  ASSERT_EQ(begin.type, LogRecordType::kCheckpointBegin);
  EXPECT_EQ(begin.active_txns.size(), 1u);
  EXPECT_EQ(begin.active_txns[0].txn_id, txn);
  EXPECT_EQ(begin.next_page_id, storage_->next_page_id());
  FACE_ASSERT_OK(db_->Commit(txn));
}

TEST_F(RecoveryTest, ControlBlockPointsAtLastCompleteCheckpoint) {
  FACE_ASSERT_OK_AND_ASSIGN(Lsn first, db_->TakeCheckpoint());
  FACE_ASSERT_OK_AND_ASSIGN(Lsn second, db_->TakeCheckpoint());
  EXPECT_GT(second, first);
  FACE_ASSERT_OK_AND_ASSIGN(Lsn recorded, log_->ReadControlBlock());
  EXPECT_EQ(recorded, second);
}

}  // namespace
}  // namespace face
