// TPC-C tests: row codecs, loader cardinalities (§4.3), transaction
// semantics, and the §3.3.2 consistency conditions after a mixed run.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "tests/test_util.h"
#include "tpcc/schema.h"
#include "tpcc/workload.h"

namespace face {
namespace tpcc {
namespace {

TEST(TpccSchemaTest, RowCodecsRoundTrip) {
  CustomerRow c;
  c.c_id = 42;
  c.c_d_id = 3;
  c.c_w_id = 1;
  c.c_first = "First";
  c.c_middle = "OE";
  c.c_last = "BARBAROUGHT";
  c.c_credit = "BC";
  c.c_balance = -123456;
  c.c_discount = 250;
  c.c_data = std::string(499, 'd');
  const std::string bytes = c.Encode();
  EXPECT_EQ(bytes.size(), CustomerRow::kSize);
  const CustomerRow back = CustomerRow::Decode(bytes);
  EXPECT_EQ(back.c_id, 42u);
  EXPECT_EQ(back.c_last, "BARBAROUGHT");
  EXPECT_EQ(back.c_credit, "BC");
  EXPECT_EQ(back.c_balance, -123456);
  EXPECT_EQ(back.c_data, c.c_data);

  StockRow s;
  s.s_i_id = 9;
  s.s_w_id = 2;
  s.s_quantity = -4;  // stock can briefly go conceptually low
  for (int i = 0; i < 10; ++i) s.s_dist[i] = std::string(24, 'a' + i);
  s.s_ytd = 77;
  const std::string sbytes = s.Encode();
  EXPECT_EQ(sbytes.size(), StockRow::kSize);
  const StockRow sback = StockRow::Decode(sbytes);
  EXPECT_EQ(sback.s_quantity, -4);
  EXPECT_EQ(sback.s_dist[9], std::string(24, 'j'));
  EXPECT_EQ(sback.s_ytd, 77);

  OrderLineRow ol;
  ol.ol_o_id = 3001;
  ol.ol_number = 7;
  ol.ol_amount = 123456;
  ol.ol_dist_info = std::string(24, 'x');
  const std::string obytes = ol.Encode();
  EXPECT_EQ(obytes.size(), OrderLineRow::kSize);
  EXPECT_EQ(OrderLineRow::Decode(obytes).ol_amount, 123456);
}

TEST(TpccSchemaTest, FixedOffsetsMatchEncoding) {
  WarehouseRow w;
  w.w_ytd = 424242;
  const std::string bytes = w.Encode();
  EXPECT_EQ(DecodeFixed64(bytes.data() + WarehouseRow::kYtdOffset), 424242u);

  DistrictRow d;
  d.d_ytd = 777;
  d.d_next_o_id = 3001;
  const std::string dbytes = d.Encode();
  EXPECT_EQ(DecodeFixed64(dbytes.data() + DistrictRow::kYtdOffset), 777u);
  EXPECT_EQ(DecodeFixed32(dbytes.data() + DistrictRow::kNextOrderIdOffset),
            3001u);

  OrderRow o;
  o.o_carrier_id = 5;
  const std::string obytes = o.Encode();
  EXPECT_EQ(DecodeFixed32(obytes.data() + OrderRow::kCarrierOffset), 5u);
}

TEST(TpccSchemaTest, RidCodecRoundTrip) {
  const Rid rid{123456789, 321};
  const std::string v = EncodeRid(rid);
  EXPECT_EQ(v.size(), kRidValueSize);
  EXPECT_EQ(DecodeRid(v), rid);
}

/// System fixture over the shared 1-warehouse golden image.
class TpccSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TestbedOptions opts;
    opts.policy = CachePolicy::kNone;
    opts.clients = 4;
    tb_ = std::make_unique<Testbed>(opts, &SharedGolden());
    FACE_ASSERT_OK(tb_->Start());
  }

  /// Sum a per-row value over a full table scan.
  template <typename Fn>
  void ScanTable(HeapFile* table, Fn&& fn) {
    FACE_ASSERT_OK(table->Scan([&](Rid, std::string_view row) {
      fn(row);
      return true;
    }));
  }

  std::unique_ptr<Testbed> tb_;
};

TEST_F(TpccSystemTest, LoaderCardinalitiesMatchSpec) {
  Tables* t = tb_->tables();
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t warehouses, t->warehouse.CountRows());
  EXPECT_EQ(warehouses, 1u);
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t districts, t->district.CountRows());
  EXPECT_EQ(districts, kDistrictsPerWarehouse);
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t customers, t->customer.CountRows());
  EXPECT_EQ(customers, kDistrictsPerWarehouse * kCustomersPerDistrict);
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t items, t->item.CountRows());
  EXPECT_EQ(items, kItems);
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t stock, t->stock.CountRows());
  EXPECT_EQ(stock, kStockPerWarehouse);
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t orders, t->orders.CountRows());
  EXPECT_EQ(orders, kDistrictsPerWarehouse * kOrdersPerDistrict);
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t new_orders, t->new_order.CountRows());
  EXPECT_EQ(new_orders, kDistrictsPerWarehouse *
                            (kOrdersPerDistrict - kFirstUndeliveredOrder + 1));
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t history, t->history.CountRows());
  EXPECT_EQ(history, customers);

  // Index cardinalities match their tables.
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t pk_c, t->pk_customer.CountEntries());
  EXPECT_EQ(pk_c, customers);
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t name_c,
                            t->idx_customer_name.CountEntries());
  EXPECT_EQ(name_c, customers);
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t pk_ol, t->pk_order_line.CountEntries());
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t ol_rows, t->order_line.CountRows());
  EXPECT_EQ(pk_ol, ol_rows);
  // ~10 lines per order on average (5..15 uniform).
  EXPECT_GT(ol_rows, orders * 8);
  EXPECT_LT(ol_rows, orders * 12);
}

TEST_F(TpccSystemTest, NewOrderAdvancesDistrictAndInsertsRows) {
  Workload* wl = tb_->tpcc_workload();
  Tables* t = tb_->tables();
  std::string row;
  FACE_ASSERT_OK(t->pk_district.Get(DistrictKey(1, 1), &row));
  const Rid d_rid = DecodeRid(row);
  FACE_ASSERT_OK(t->district.Read(d_rid, &row));
  const uint32_t next_before = DistrictRow::Decode(row).d_next_o_id;

  // Run NewOrders until district 1 takes one (driver picks d randomly).
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t orders_before, t->orders.CountRows());
  for (int i = 0; i < 30; ++i) FACE_ASSERT_OK(wl->NewOrder(1));

  FACE_ASSERT_OK(t->district.Read(d_rid, &row));
  EXPECT_GE(DistrictRow::Decode(row).d_next_o_id, next_before);
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t orders_after, t->orders.CountRows());
  const uint64_t added = orders_after - orders_before;
  EXPECT_GT(added, 25u);  // ~1 % user aborts may eat a couple
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t no_after, t->new_order.CountRows());
  EXPECT_EQ(no_after, 9000u + added);
}

TEST_F(TpccSystemTest, PaymentMovesMoneyConsistently) {
  Workload* wl = tb_->tpcc_workload();
  Tables* t = tb_->tables();
  for (int i = 0; i < 40; ++i) FACE_ASSERT_OK(wl->Payment(1));

  // §3.3.2.1: W_YTD = sum(D_YTD) of its districts.
  std::string row;
  FACE_ASSERT_OK(t->pk_warehouse.Get(WarehouseKey(1), &row));
  FACE_ASSERT_OK(t->warehouse.Read(DecodeRid(row), &row));
  const int64_t w_ytd = WarehouseRow::Decode(row).w_ytd;
  EXPECT_GT(w_ytd, 30000000);  // grew from the initial $300,000

  int64_t d_ytd_sum = 0;
  ScanTable(&t->district, [&](std::string_view r) {
    d_ytd_sum += DistrictRow::Decode(r).d_ytd;
  });
  EXPECT_EQ(w_ytd, d_ytd_sum - 10 * 3000000 + 30000000);

  // History grew by one row per payment.
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t history, t->history.CountRows());
  EXPECT_EQ(history, 30000u + 40u);
}

TEST_F(TpccSystemTest, DeliveryClearsOldestNewOrders) {
  Workload* wl = tb_->tpcc_workload();
  Tables* t = tb_->tables();
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t no_before, t->new_order.CountRows());
  FACE_ASSERT_OK(wl->Delivery(1));
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t no_after, t->new_order.CountRows());
  EXPECT_EQ(no_after, no_before - kDistrictsPerWarehouse);

  // The delivered orders got carriers and delivery dates.
  std::string row;
  FACE_ASSERT_OK(t->pk_orders.Get(OrderKey(1, 1, kFirstUndeliveredOrder),
                                  &row));
  FACE_ASSERT_OK(t->orders.Read(DecodeRid(row), &row));
  const OrderRow order = OrderRow::Decode(row);
  EXPECT_NE(order.o_carrier_id, 0u);
  FACE_ASSERT_OK(
      t->pk_order_line.Get(OrderLineKey(1, 1, kFirstUndeliveredOrder, 1),
                           &row));
  FACE_ASSERT_OK(t->order_line.Read(DecodeRid(row), &row));
  EXPECT_NE(OrderLineRow::Decode(row).ol_delivery_d, 0u);
}

TEST_F(TpccSystemTest, ReadOnlyTransactionsComplete) {
  Workload* wl = tb_->tpcc_workload();
  for (int i = 0; i < 10; ++i) {
    FACE_ASSERT_OK(wl->OrderStatus(1));
    FACE_ASSERT_OK(wl->StockLevel(1, 1 + i % 10));
  }
}

TEST_F(TpccSystemTest, MixedRunKeepsConsistencyConditions) {
  Workload* wl = tb_->tpcc_workload();
  Tables* t = tb_->tables();
  for (int i = 0; i < 400; ++i) FACE_ASSERT_OK(wl->RunOne().status());
  EXPECT_EQ(wl->stats().total(), 400u);
  EXPECT_GT(wl->stats().new_orders(), 120u);  // ~45 % of the mix

  // §3.3.2.1: d_next_o_id - 1 == max(o_id) per district.
  std::map<uint32_t, uint32_t> next_o;
  ScanTable(&t->district, [&](std::string_view r) {
    const DistrictRow d = DistrictRow::Decode(r);
    next_o[d.d_id] = d.d_next_o_id;
  });
  std::map<uint32_t, uint32_t> max_o;
  ScanTable(&t->orders, [&](std::string_view r) {
    const OrderRow o = OrderRow::Decode(r);
    max_o[o.o_d_id] = std::max(max_o[o.o_d_id], o.o_id);
  });
  for (const auto& [d_id, next] : next_o) {
    EXPECT_EQ(next, max_o[d_id] + 1) << "district " << d_id;
  }

  // §3.3.2.3: every order's ol_cnt equals its actual line count, checked on
  // a sample; and order lines are index-reachable.
  std::string row;
  for (uint32_t o_id : {1u, 500u, 2500u, max_o[1]}) {
    FACE_ASSERT_OK(t->pk_orders.Get(OrderKey(1, 1, o_id), &row));
    FACE_ASSERT_OK(t->orders.Read(DecodeRid(row), &row));
    const OrderRow order = OrderRow::Decode(row);
    for (uint32_t ol = 1; ol <= order.o_ol_cnt; ++ol) {
      EXPECT_TRUE(t->pk_order_line.Get(OrderLineKey(1, 1, o_id, ol), &row).ok())
          << "order " << o_id << " line " << ol;
    }
    EXPECT_TRUE(t->pk_order_line
                    .Get(OrderLineKey(1, 1, o_id, order.o_ol_cnt + 1), &row)
                    .IsNotFound());
  }

  // Indexes still structurally sound after the run.
  FACE_ASSERT_OK(t->pk_orders.CheckInvariants());
  FACE_ASSERT_OK(t->pk_new_order.CheckInvariants());
  FACE_ASSERT_OK(t->pk_order_line.CheckInvariants());
  FACE_ASSERT_OK(t->idx_customer_name.CheckInvariants());
}

TEST_F(TpccSystemTest, CustomerSelectionByNameFindsMidpoint) {
  // Payment by last name must work for every generated name.
  Workload* wl = tb_->tpcc_workload();
  for (int i = 0; i < 60; ++i) FACE_ASSERT_OK(wl->Payment(1));
  // At least some of those went through the by-name path (60 %); the
  // absence of failures is the assertion.
}

}  // namespace
}  // namespace tpcc
}  // namespace face
