// Unit tests: catalog create/find/update/load, persistence across reload.
#include <gtest/gtest.h>

#include "engine/catalog.h"
#include "tests/test_util.h"

namespace face {
namespace {

class CatalogTest : public EngineFixture {
 protected:
  void SetUp() override { Init(); }
};

TEST_F(CatalogTest, CreateFindRoundTrip) {
  PageWriter bulk;
  FACE_ASSERT_OK_AND_ASSIGN(
      uint32_t idx,
      db_->catalog()->Create(&bulk, "orders", ObjectKind::kHeap, 17));
  FACE_ASSERT_OK_AND_ASSIGN(uint32_t found, db_->catalog()->Find("orders"));
  EXPECT_EQ(found, idx);
  const CatalogEntry& e = db_->catalog()->entry(idx);
  EXPECT_EQ(e.name, "orders");
  EXPECT_EQ(e.kind, ObjectKind::kHeap);
  EXPECT_EQ(e.root_page, 17u);
  EXPECT_EQ(e.last_page, 17u);  // heap: last starts at first
  EXPECT_TRUE(db_->catalog()->Find("nope").status().IsNotFound());
}

TEST_F(CatalogTest, RejectsDuplicatesAndBadNames) {
  PageWriter bulk;
  FACE_ASSERT_OK(
      db_->catalog()->Create(&bulk, "t", ObjectKind::kHeap, 1).status());
  EXPECT_TRUE(db_->catalog()
                  ->Create(&bulk, "t", ObjectKind::kBtree, 2)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db_->catalog()
                  ->Create(&bulk, "", ObjectKind::kHeap, 2)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db_->catalog()
                  ->Create(&bulk, std::string(40, 'n'), ObjectKind::kHeap, 2)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(CatalogTest, UpdatesPersistAcrossReload) {
  PageWriter bulk;
  FACE_ASSERT_OK_AND_ASSIGN(
      uint32_t heap_idx,
      db_->catalog()->Create(&bulk, "heap", ObjectKind::kHeap, 5));
  FACE_ASSERT_OK_AND_ASSIGN(
      uint32_t tree_idx,
      db_->catalog()->Create(&bulk, "tree", ObjectKind::kBtree, 6));
  FACE_ASSERT_OK(db_->catalog()->SetLastPage(&bulk, heap_idx, 99));
  FACE_ASSERT_OK(db_->catalog()->SetRootPage(&bulk, tree_idx, 88));
  FACE_ASSERT_OK(db_->catalog()->AddRowCount(&bulk, heap_idx, 12));
  FACE_ASSERT_OK(db_->catalog()->AddRowCount(&bulk, heap_idx, -2));

  // Reload from the page: everything must round-trip through media bytes.
  Catalog reloaded(db_->pool());
  FACE_ASSERT_OK(reloaded.Load());
  EXPECT_EQ(reloaded.size(), 2u);
  FACE_ASSERT_OK_AND_ASSIGN(uint32_t h, reloaded.Find("heap"));
  EXPECT_EQ(reloaded.entry(h).last_page, 99u);
  EXPECT_EQ(reloaded.entry(h).row_count, 10u);
  FACE_ASSERT_OK_AND_ASSIGN(uint32_t t, reloaded.Find("tree"));
  EXPECT_EQ(reloaded.entry(t).root_page, 88u);
  EXPECT_EQ(reloaded.entry(t).kind, ObjectKind::kBtree);
}

TEST_F(CatalogTest, NamesListsInSlotOrder) {
  PageWriter bulk;
  FACE_ASSERT_OK(db_->catalog()->Create(&bulk, "a", ObjectKind::kHeap, 1).status());
  FACE_ASSERT_OK(db_->catalog()->Create(&bulk, "b", ObjectKind::kHeap, 2).status());
  FACE_ASSERT_OK(db_->catalog()->Create(&bulk, "c", ObjectKind::kBtree, 3).status());
  const std::vector<std::string> names = db_->catalog()->Names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[2], "c");
}

TEST_F(CatalogTest, FillsUpAndReportsOutOfSpace) {
  PageWriter bulk;
  Status last = Status::OK();
  int created = 0;
  for (int i = 0; i < 100; ++i) {
    auto r = db_->catalog()->Create(&bulk, "t" + std::to_string(i),
                                    ObjectKind::kHeap, i + 1);
    if (!r.ok()) {
      last = r.status();
      break;
    }
    ++created;
  }
  EXPECT_TRUE(last.IsOutOfSpace());
  EXPECT_EQ(created, static_cast<int>(kPagePayloadSize /
                                      CatalogEntry::kEncodedSize));
}

}  // namespace
}  // namespace face
