// Workload subsystem tests: distribution shapes, operation-mix ratios,
// trace record -> replay round trips (format and determinism), crash
// recovery under the KV workloads, and TPC-C driven through the generic
// interface with behavior matching the historical hard-wired path.
#include "workload/workload.h"

#include <gtest/gtest.h>

#include <map>

#include "tests/test_util.h"
#include "workload/kv_table.h"
#include "workload/scan_workload.h"
#include "workload/tpcc_workload.h"
#include "workload/trace.h"
#include "workload/trace_workload.h"
#include "workload/ycsb_workload.h"

namespace face {
namespace {

using workload::ScanHeavyFactory;
using workload::ScanHeavyOptions;
using workload::TpccFactory;
using workload::Trace;
using workload::TraceRecorder;
using workload::TraceReplayFactory;
using workload::YcsbFactory;
using workload::YcsbOptions;
using workload::YcsbWorkload;

// Small KV scale keeping golden builds fast; ~1k data pages.
YcsbOptions TestYcsb(YcsbOptions::Distribution dist) {
  YcsbOptions o = YcsbOptions::WithDistribution(dist);
  o.records = 8000;
  o.value_bytes = 200;
  return o;
}

/// One golden image per options shape, built once per test binary.
const GoldenImage& YcsbGolden(YcsbOptions::Distribution dist) {
  static std::map<int, GoldenImage>* images = new std::map<int, GoldenImage>();
  const int key = static_cast<int>(dist);
  auto it = images->find(key);
  if (it == images->end()) {
    auto g = GoldenImage::BuildFor(
        std::make_shared<YcsbFactory>(TestYcsb(dist)));
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    it = images->emplace(key, std::move(g.value())).first;
  }
  return it->second;
}

TestbedOptions SmallOptions(const GoldenImage& golden, CachePolicy policy) {
  TestbedOptions opts;
  opts.policy = policy;
  opts.flash_pages = golden.db_pages() / 5;
  opts.clients = 8;
  return opts;
}

// --- distribution shape ------------------------------------------------------

TEST(ZipfShapeTest, HeadConcentrationMatchesTheta) {
  ZipfGenerator zipf(10000, 0.99, /*seed=*/7);
  constexpr int kDraws = 50000;
  uint64_t top10 = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next() < 10) ++top10;
  }
  // theta=0.99 over 10k keys: the top-10 ranks carry ~30 % of the mass.
  const double share = static_cast<double>(top10) / kDraws;
  EXPECT_GT(share, 0.20);
  EXPECT_LT(share, 0.45);
}

TEST(ZipfShapeTest, ThetaZeroIsUniform) {
  ZipfGenerator zipf(1000, 0.0, /*seed=*/7);
  constexpr int kDraws = 50000;
  uint64_t top10 = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next() < 10) ++top10;
  }
  const double share = static_cast<double>(top10) / kDraws;
  EXPECT_GT(share, 0.005);
  EXPECT_LT(share, 0.02);
}

TEST(YcsbKeyTest, LatestDistributionPrefersNewestKeys) {
  const GoldenImage& golden =
      YcsbGolden(YcsbOptions::Distribution::kLatest);
  Testbed tb(SmallOptions(golden, CachePolicy::kNone), &golden);
  FACE_ASSERT_OK(tb.Start());
  auto* ycsb = dynamic_cast<YcsbWorkload*>(tb.workload());
  ASSERT_NE(ycsb, nullptr);
  Random rnd(99);
  const uint64_t records = ycsb->options().records;
  uint64_t newest_decile = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (ycsb->ChooseKey(rnd) >= records - records / 10) ++newest_decile;
  }
  // Zipf-fast decay backwards from the newest key: far more than the 10 %
  // a uniform chooser would put in the newest decile.
  EXPECT_GT(static_cast<double>(newest_decile) / kDraws, 0.5);
}

// --- operation mix -----------------------------------------------------------

TEST(YcsbWorkloadTest, MixRatiosMatchConfiguration) {
  const GoldenImage& golden =
      YcsbGolden(YcsbOptions::Distribution::kZipfian);
  Testbed tb(SmallOptions(golden, CachePolicy::kNone), &golden);
  FACE_ASSERT_OK(tb.Start());
  RunOptions run;
  run.txns = 2000;
  FACE_ASSERT_OK_AND_ASSIGN(RunResult result, tb.Run(run));
  EXPECT_EQ(result.txns, 2000u);
  EXPECT_EQ(result.primary_txns, 2000u);  // every YCSB op counts

  const workload::WorkloadStats& stats = tb.workload()->stats();
  const auto share = [&](uint8_t type) {
    return static_cast<double>(stats.completed[type]) / 2000.0;
  };
  // Defaults: 50/44/3/3. Allow generous binomial slack.
  EXPECT_NEAR(share(YcsbWorkload::kRead), 0.50, 0.05);
  EXPECT_NEAR(share(YcsbWorkload::kUpdate), 0.44, 0.05);
  EXPECT_NEAR(share(YcsbWorkload::kInsert), 0.03, 0.02);
  EXPECT_NEAR(share(YcsbWorkload::kScan), 0.03, 0.02);
  EXPECT_GT(stats.rows_read, 0u);
  EXPECT_GT(stats.rows_written, 0u);
}

TEST(ScanHeavyWorkloadTest, ScansDominateRowsTouched) {
  static GoldenImage* golden = [] {
    ScanHeavyOptions opts;
    opts.records = 8000;
    opts.value_bytes = 200;
    auto g = GoldenImage::BuildFor(std::make_shared<ScanHeavyFactory>(opts));
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return new GoldenImage(std::move(g.value()));
  }();
  Testbed tb(SmallOptions(*golden, CachePolicy::kFaceGSC), golden);
  FACE_ASSERT_OK(tb.Start());
  RunOptions run;
  run.txns = 150;
  FACE_ASSERT_OK_AND_ASSIGN(RunResult result, tb.Run(run));
  EXPECT_EQ(result.txns, 150u);
  // ~70 % scans of 100..800 rows: far more rows touched than transactions.
  EXPECT_GT(tb.workload()->stats().rows_read, 150u * 20);
  FACE_EXPECT_OK(tb.cache()->CheckInvariants());
}

// --- crash / recovery through the generic interface --------------------------

TEST(YcsbWorkloadTest, CrashRecoverResume) {
  const GoldenImage& golden =
      YcsbGolden(YcsbOptions::Distribution::kZipfian);
  Testbed tb(SmallOptions(golden, CachePolicy::kFaceGSC), &golden);
  FACE_ASSERT_OK(tb.Start());
  RunOptions run;
  run.txns = 300;
  run.checkpoint_interval = 5 * kNanosPerSecond;
  FACE_ASSERT_OK(tb.Run(run).status());

  FACE_ASSERT_OK(tb.InjectInflightTransactions(3));
  FACE_ASSERT_OK(tb.Crash());
  FACE_ASSERT_OK_AND_ASSIGN(RestartReport report, tb.Recover());
  EXPECT_EQ(report.losers, 3u);

  RunOptions after;
  after.txns = 200;
  FACE_ASSERT_OK_AND_ASSIGN(RunResult result, tb.Run(after));
  EXPECT_EQ(result.txns, 200u);
  FACE_EXPECT_OK(tb.cache()->CheckInvariants());
}

// --- trace record / replay ---------------------------------------------------

TEST(TraceTest, EncodeDecodeRoundTrip) {
  Trace trace;
  trace.BeginTxn();
  trace.Append(10, false);
  trace.Append(10, true);
  trace.Append(99999, false);
  trace.BeginTxn();  // empty transaction
  trace.BeginTxn();
  trace.Append(3, true);

  const std::string data = trace.Encode();
  FACE_ASSERT_OK_AND_ASSIGN(Trace back, Trace::Decode(data));
  EXPECT_TRUE(back == trace);
  EXPECT_EQ(back.txn_count(), 3u);
  EXPECT_EQ(back.event_count(), 4u);
  const auto [b0, e0] = back.TxnSpan(0);
  EXPECT_EQ(e0 - b0, 3u);
  const auto [b1, e1] = back.TxnSpan(1);
  EXPECT_EQ(e1 - b1, 0u);
}

TEST(TraceTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Trace::Decode("short").ok());
  std::string bad(32, '\xAB');
  EXPECT_FALSE(Trace::Decode(bad).ok());

  // Valid magic/version but absurd counts: must reject, not allocate.
  Trace small;
  small.BeginTxn();
  small.Append(1, false);
  std::string forged = small.Encode();
  EncodeFixed64(forged.data() + 16, ~uint64_t{0});
  const auto huge = Trace::Decode(forged);
  EXPECT_FALSE(huge.ok());
  EXPECT_TRUE(huge.status().IsCorruption()) << huge.status().ToString();
}

TEST(TraceTest, FileRoundTrip) {
  Trace trace;
  Random rnd(5);
  PageId page = 500;
  for (int t = 0; t < 50; ++t) {
    trace.BeginTxn();
    for (int e = 0; e < 8; ++e) {
      page = (page + rnd.Uniform(64)) % 4096;
      trace.Append(page, rnd.PercentTrue(30));
    }
  }
  const std::string path = ::testing::TempDir() + "/face_trace_test.bin";
  FACE_ASSERT_OK(trace.SaveTo(path));
  FACE_ASSERT_OK_AND_ASSIGN(Trace back, Trace::LoadFrom(path));
  EXPECT_TRUE(back == trace);
}

TEST(TraceTest, RecordThenReplayIsDeterministic) {
  const GoldenImage& golden =
      YcsbGolden(YcsbOptions::Distribution::kZipfian);

  // Record the page-reference stream of a live YCSB run. The tiny DRAM
  // pool forces evictions, so the flash tier sees admissions at replay.
  TraceRecorder recorder;
  {
    TestbedOptions record_opts = SmallOptions(golden, CachePolicy::kNone);
    record_opts.buffer_frames = 64;
    Testbed tb(record_opts, &golden);
    FACE_ASSERT_OK(tb.Start());
    tb.set_tracer(&recorder);
    RunOptions run;
    run.txns = 250;
    FACE_ASSERT_OK(tb.Run(run).status());
  }
  auto trace = std::make_shared<const Trace>(recorder.TakeTrace());
  ASSERT_EQ(trace->txn_count(), 250u);
  ASSERT_GT(trace->event_count(), 250u);

  // Replay it twice on fresh clones: device request counts must be
  // identical run to run (the acceptance bar for deterministic replay).
  auto replay_once = [&](CachePolicy policy) {
    TestbedOptions opts = SmallOptions(golden, policy);
    opts.buffer_frames = 64;
    opts.workload = std::make_shared<TraceReplayFactory>(trace);
    Testbed tb(opts, &golden);
    EXPECT_TRUE(tb.Start().ok());
    RunOptions run;
    run.txns = trace->txn_count();
    auto result = tb.Run(run);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::make_pair(result->db_stats.total_reqs(),
                          result->flash_stats.total_reqs());
  };

  const auto first = replay_once(CachePolicy::kNone);
  const auto second = replay_once(CachePolicy::kNone);
  EXPECT_GT(first.first, 0u);
  EXPECT_EQ(first, second);

  // And the same trace drives a flash-cache policy (different physical
  // behavior, same logical stream) — again deterministically.
  const auto face1 = replay_once(CachePolicy::kFaceGSC);
  const auto face2 = replay_once(CachePolicy::kFaceGSC);
  EXPECT_EQ(face1, face2);
  EXPECT_GT(face1.second, 0u);  // the flash tier actually saw traffic
}

// --- TPC-C through the generic interface -------------------------------------

TEST(TpccDriverTest, DefaultFactoryIsTpcc) {
  Testbed tb(SmallOptions(SharedGolden(), CachePolicy::kNone),
             &SharedGolden());
  FACE_ASSERT_OK(tb.Start());
  ASSERT_NE(tb.workload(), nullptr);
  EXPECT_STREQ(tb.workload()->name(), "tpcc");
  EXPECT_NE(tb.tpcc_workload(), nullptr);
  EXPECT_NE(tb.tables(), nullptr);
}

TEST(TpccDriverTest, ExplicitFactoryMatchesDefaultPathExactly) {
  // The old hard-wired TPC-C path is now factory(default); an explicit
  // TpccFactory must reproduce it bit-for-bit: same seed, same request
  // stream, same device traffic.
  RunOptions run;
  run.txns = 300;

  Testbed default_path(SmallOptions(SharedGolden(), CachePolicy::kFaceGSC),
                       &SharedGolden());
  FACE_ASSERT_OK(default_path.Start());
  FACE_ASSERT_OK_AND_ASSIGN(RunResult a, default_path.Run(run));

  TestbedOptions opts = SmallOptions(SharedGolden(), CachePolicy::kFaceGSC);
  opts.workload = std::make_shared<TpccFactory>(SharedGolden().warehouses);
  Testbed explicit_path(opts, &SharedGolden());
  FACE_ASSERT_OK(explicit_path.Start());
  FACE_ASSERT_OK_AND_ASSIGN(RunResult b, explicit_path.Run(run));

  EXPECT_EQ(a.primary_txns, b.primary_txns);
  EXPECT_EQ(a.user_aborts, b.user_aborts);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.db_stats.total_reqs(), b.db_stats.total_reqs());
  EXPECT_EQ(a.flash_stats.total_reqs(), b.flash_stats.total_reqs());
  EXPECT_EQ(a.log_stats.total_reqs(), b.log_stats.total_reqs());
}

TEST(TpccDriverTest, MixSharesMatchSpec) {
  Testbed tb(SmallOptions(SharedGolden(), CachePolicy::kNone),
             &SharedGolden());
  FACE_ASSERT_OK(tb.Start());
  RunOptions run;
  run.txns = 1000;
  FACE_ASSERT_OK_AND_ASSIGN(RunResult result, tb.Run(run));
  const workload::WorkloadStats& stats = tb.workload()->stats();
  EXPECT_EQ(stats.total(), 1000u);
  EXPECT_EQ(stats.primary,
            stats.completed[static_cast<int>(tpcc::TxnType::kNewOrder)]);
  EXPECT_NEAR(static_cast<double>(stats.primary) / 1000.0, 0.45, 0.06);
  EXPECT_EQ(result.primary_txns, stats.primary);
}

}  // namespace
}  // namespace face
