// The sharded testbed: per-shard determinism (same seed -> bit-identical
// per-shard simulated fingerprints, at any shard count, on any thread
// interleaving), exact equivalence of a one-shard ShardedTestbed with a
// plain Testbed, throughput scale-up, workload partitioning, and the
// cross-shard (2PC) crash storm proving atomicity through the
// differential checker.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "testbed/crash_storm.h"
#include "testbed/sharded_testbed.h"
#include "tests/test_util.h"
#include "workload/ycsb_workload.h"

namespace face {
namespace {

using workload::YcsbFactory;
using workload::YcsbOptions;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
}

std::shared_ptr<YcsbFactory> SmallYcsb(uint64_t records = 8000) {
  YcsbOptions o;
  o.records = records;
  o.value_bytes = 120;
  return std::make_shared<YcsbFactory>(o);
}

ShardedTestbedOptions SmallConfig(uint32_t shards, uint64_t records = 8000) {
  ShardedTestbedOptions so;
  so.shards = shards;
  so.base.clients = 8;
  so.base.seed = 42;
  so.base.policy = CachePolicy::kFace;
  so.base.buffer_frames = 128;
  so.factory = SmallYcsb(records);
  so.flash_ratio = 0.1;  // cache scales with each shard's slice
  return so;
}

/// The exact-integer shape of one shard's run — any drift fails.
struct ShardFingerprint {
  uint64_t duration, txns, primary, db_busy, log_busy, flash_busy, db_pages,
      log_pages, flash_pages, lookups, hits;

  bool operator==(const ShardFingerprint& o) const {
    return duration == o.duration && txns == o.txns && primary == o.primary &&
           db_busy == o.db_busy && log_busy == o.log_busy &&
           flash_busy == o.flash_busy && db_pages == o.db_pages &&
           log_pages == o.log_pages && flash_pages == o.flash_pages &&
           lookups == o.lookups && hits == o.hits;
  }
};

ShardFingerprint FingerprintOf(const RunResult& r) {
  return ShardFingerprint{r.duration,
                          r.txns,
                          r.primary_txns,
                          r.db_stats.busy_ns,
                          r.log_stats.busy_ns,
                          r.flash_stats.busy_ns,
                          r.db_stats.total_pages(),
                          r.log_stats.total_pages(),
                          r.flash_stats.total_pages(),
                          r.cache_stats.lookups,
                          r.cache_stats.hits};
}

/// Start, warm up, run, and fingerprint every shard of one configuration.
std::vector<ShardFingerprint> MeasureShards(const ShardedTestbedOptions& so,
                                            uint64_t warmup, uint64_t txns) {
  ShardedTestbed stb(so);
  if (!stb.Start().ok() || !stb.Warmup(warmup).ok()) return {};
  RunOptions run;
  run.txns = txns;
  run.checkpoint_interval = 3 * kNanosPerSecond;
  std::vector<RunResult> per_shard;
  if (!stb.Run(run, &per_shard).ok()) return {};
  std::vector<ShardFingerprint> fps;
  for (const RunResult& r : per_shard) fps.push_back(FingerprintOf(r));
  return fps;
}

TEST(ShardTest, PerShardDeterminismAcrossShardCounts) {
  // The contract: rebuilding the whole rig and replaying the same seed
  // reproduces every shard's virtual-time execution exactly, no matter how
  // the worker threads interleave in wall time — at every shard count.
  for (const uint32_t shards : {1u, 2u, 4u}) {
    const auto first = MeasureShards(SmallConfig(shards), 150, 250);
    ASSERT_EQ(first.size(), shards) << "run failed at " << shards << " shards";
    const auto second = MeasureShards(SmallConfig(shards), 150, 250);
    ASSERT_EQ(second.size(), shards);
    for (uint32_t i = 0; i < shards; ++i) {
      EXPECT_TRUE(first[i] == second[i])
          << "shard " << i << "/" << shards
          << " diverged between identical replays (duration " << first[i].duration
          << " vs " << second[i].duration << ", txns " << first[i].txns
          << " vs " << second[i].txns << ")";
    }
  }
}

TEST(ShardTest, ShardsRunDecorrelatedStreams) {
  // Different shards derive different seeds: their fingerprints must not
  // be copies of each other (same txns per shard, different schedules).
  const auto fps = MeasureShards(SmallConfig(2), 150, 250);
  ASSERT_EQ(fps.size(), 2u);
  EXPECT_FALSE(fps[0] == fps[1]);
}

TEST(ShardTest, OneShardMatchesPlainTestbed) {
  // A one-shard ShardedTestbed must be observationally identical to the
  // plain Testbed it wraps: same golden, same seed, same virtual schedule.
  const ShardedTestbedOptions so = SmallConfig(1);

  FACE_ASSERT_OK_AND_ASSIGN(GoldenImage golden,
                            GoldenImage::BuildFor(so.factory, so.golden_seed));
  TestbedOptions to = so.base;
  to.flash_pages = static_cast<uint64_t>(
      so.flash_ratio * static_cast<double>(golden.db_pages()));
  Testbed plain(to, &golden);
  FACE_ASSERT_OK(plain.Start());
  FACE_ASSERT_OK(plain.Warmup(150));
  RunOptions run;
  run.txns = 250;
  run.checkpoint_interval = 3 * kNanosPerSecond;
  FACE_ASSERT_OK_AND_ASSIGN(RunResult plain_result, plain.Run(run));

  ShardedTestbed stb(so);
  FACE_ASSERT_OK(stb.Start());
  FACE_ASSERT_OK(stb.Warmup(150));
  FACE_ASSERT_OK_AND_ASSIGN(RunResult sharded_result, stb.Run(run));

  EXPECT_TRUE(FingerprintOf(plain_result) == FingerprintOf(sharded_result))
      << "one-shard rig diverged from the plain testbed: duration "
      << plain_result.duration << " vs " << sharded_result.duration;
}

TEST(ShardTest, ThroughputScalesWithShards) {
  // Fig. 5-style scale-up: the same per-shard work at 4 shards finishes in
  // roughly the single-shard makespan, so machine throughput multiplies.
  // (Per-shard slice held constant: total records scale with the count.)
  auto tpm_at = [&](uint32_t shards) -> double {
    ShardedTestbedOptions so = SmallConfig(shards, 4000 * shards);
    ShardedTestbed stb(so);
    EXPECT_TRUE(stb.Start().ok());
    EXPECT_TRUE(stb.Warmup(150).ok());
    RunOptions run;
    run.txns = 250;
    auto merged = stb.Run(run);
    EXPECT_TRUE(merged.ok());
    return merged.ok() ? merged->Tpm() : 0.0;
  };
  const double tpm1 = tpm_at(1);
  const double tpm4 = tpm_at(4);
  EXPECT_GT(tpm4, 2.0 * tpm1)
      << "4 shards only reached " << tpm4 << " tpm vs " << tpm1
      << " on one shard";
}

TEST(ShardTest, PartitionSlicesCoverTheWholeWorkload) {
  const auto factory = SmallYcsb(1001);  // deliberately not divisible
  uint64_t total = 0;
  for (uint32_t i = 0; i < 4; ++i) {
    const auto slice = factory->Partition(i, 4);
    ASSERT_NE(slice, nullptr);
    total += std::static_pointer_cast<const YcsbFactory>(slice)
                 ->options().records;
  }
  EXPECT_EQ(total, 1001u);
  // More shards than records: the overflowing shards must refuse.
  EXPECT_EQ(SmallYcsb(3)->Partition(3, 4), nullptr);
}

TEST(ShardTest, CrossShardAtomicityStorm) {
  // Sharded crash storms: concurrent per-shard crash workloads laced with
  // cross-shard 2PC transactions, one machine-wide power failure, parallel
  // recovery + in-doubt resolution — every differential check must pass,
  // and every transaction cut mid-protocol must resolve atomically (all
  // started legs committed iff the decision record survived). Runs at
  // least SHARD_STORM_SEEDS storms and keeps going (bounded) until the
  // campaign has seen a mid-2PC cut, so the atomicity path is never
  // silently skipped.
  ShardedCrashStormOptions opts;
  opts.shards = 2;
  opts.cross_shard_txns = 24;
  opts.base.workload.records = 600;
  ShardedCrashStormHarness harness(opts);

  const uint64_t seeds = EnvOr("SHARD_STORM_SEEDS", 10);
  const uint64_t base = EnvOr("SHARD_STORM_BASE_SEED", 1);
  uint64_t run = 0, tripped = 0, cuts = 0, committed = 0;
  for (uint64_t seed = base; run < seeds || (cuts == 0 && run < seeds * 4);
       ++seed, ++run) {
    auto result = harness.RunStorm(seed);
    ASSERT_TRUE(result.ok()) << "seed " << seed << ": "
                             << result.status().ToString();
    EXPECT_TRUE(result->diff.ok()) << "seed " << seed << "\n"
                                   << result->ToString();
    EXPECT_TRUE(result->atomicity_ok) << "seed " << seed << "\n"
                                      << result->ToString();
    if (result->crashed_mid_body) ++tripped;
    if (result->cross_cut_midway) ++cuts;
    committed += result->cross_committed;
  }
  EXPECT_GE(tripped, run / 2)
      << "too few sharded storms tripped the injector";
  EXPECT_GT(committed, 0u) << "no cross-shard transaction ever committed";
  EXPECT_GT(cuts, 0u) << "no storm ever cut a 2PC transaction mid-protocol ("
                      << run << " storms)";
  std::cout << "[ sharded storm ] " << run << " storms, " << tripped
            << " tripped, " << committed << " 2PC commits, " << cuts
            << " cut mid-protocol\n";
}

}  // namespace
}  // namespace face
