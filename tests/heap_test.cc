// Unit tests: slotted heap pages and heap files (insert/read/update/delete,
// slot recycling, chain growth, scans) in logged and unlogged modes.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "engine/heap_file.h"
#include "engine/heap_page.h"
#include "tests/test_util.h"

namespace face {
namespace {

class HeapTest : public EngineFixture {
 protected:
  void SetUp() override { Init(); }
};

TEST_F(HeapTest, InsertReadRoundTrip) {
  PageWriter bulk;
  FACE_ASSERT_OK_AND_ASSIGN(
      HeapFile heap, HeapFile::Create(db_->pool(), db_->catalog(), &bulk, "t"));
  FACE_ASSERT_OK_AND_ASSIGN(Rid rid, heap.Insert(&bulk, "hello heap"));
  std::string out;
  FACE_ASSERT_OK(heap.Read(rid, &out));
  EXPECT_EQ(out, "hello heap");
}

TEST_F(HeapTest, UpdatePreservesRidAndRequiresEqualLength) {
  PageWriter bulk;
  FACE_ASSERT_OK_AND_ASSIGN(
      HeapFile heap, HeapFile::Create(db_->pool(), db_->catalog(), &bulk, "t"));
  FACE_ASSERT_OK_AND_ASSIGN(Rid rid, heap.Insert(&bulk, "0123456789"));
  FACE_ASSERT_OK(heap.Update(&bulk, rid, "abcdefghij"));
  std::string out;
  FACE_ASSERT_OK(heap.Read(rid, &out));
  EXPECT_EQ(out, "abcdefghij");
  EXPECT_TRUE(heap.Update(&bulk, rid, "short").IsInvalidArgument());
}

TEST_F(HeapTest, DeleteTombstonesAndRecyclesSlot) {
  PageWriter bulk;
  FACE_ASSERT_OK_AND_ASSIGN(
      HeapFile heap, HeapFile::Create(db_->pool(), db_->catalog(), &bulk, "t"));
  FACE_ASSERT_OK_AND_ASSIGN(Rid a, heap.Insert(&bulk, "aaaa"));
  FACE_ASSERT_OK_AND_ASSIGN(Rid b, heap.Insert(&bulk, "bbbb"));
  FACE_ASSERT_OK(heap.Delete(&bulk, a));
  std::string out;
  EXPECT_TRUE(heap.Read(a, &out).IsNotFound());
  FACE_ASSERT_OK(heap.Read(b, &out));
  EXPECT_EQ(out, "bbbb");
  // Double delete reports NotFound.
  EXPECT_TRUE(heap.Delete(&bulk, a).IsNotFound());
  // The freed slot is recycled by the next insert on that page.
  FACE_ASSERT_OK_AND_ASSIGN(Rid c, heap.Insert(&bulk, "cccc"));
  EXPECT_EQ(c.page_id, a.page_id);
  EXPECT_EQ(c.slot, a.slot);
}

TEST_F(HeapTest, ChainGrowsAcrossPagesAndScansInOrder) {
  PageWriter bulk;
  FACE_ASSERT_OK_AND_ASSIGN(
      HeapFile heap, HeapFile::Create(db_->pool(), db_->catalog(), &bulk, "t"));
  const std::string row(400, 'r');
  constexpr int kRows = 64;  // ~7 rows/page -> ~10 pages
  std::vector<Rid> rids;
  for (int i = 0; i < kRows; ++i) {
    std::string r = row;
    r[0] = static_cast<char>('A' + i % 26);
    FACE_ASSERT_OK_AND_ASSIGN(Rid rid, heap.Insert(&bulk, r));
    rids.push_back(rid);
  }
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t pages, heap.CountPages());
  EXPECT_GT(pages, 5u);
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t rows, heap.CountRows());
  EXPECT_EQ(rows, static_cast<uint64_t>(kRows));

  // Scan visits every row exactly once.
  std::set<std::pair<PageId, uint16_t>> seen;
  FACE_ASSERT_OK(heap.Scan([&](Rid rid, std::string_view rec) {
    EXPECT_EQ(rec.size(), row.size());
    seen.insert({rid.page_id, rid.slot});
    return true;
  }));
  EXPECT_EQ(seen.size(), static_cast<size_t>(kRows));

  // Early termination stops the scan.
  int visited = 0;
  FACE_ASSERT_OK(heap.Scan([&](Rid, std::string_view) {
    return ++visited < 5;
  }));
  EXPECT_EQ(visited, 5);
}

TEST_F(HeapTest, RejectsOversizedRecord) {
  PageWriter bulk;
  FACE_ASSERT_OK_AND_ASSIGN(
      HeapFile heap, HeapFile::Create(db_->pool(), db_->catalog(), &bulk, "t"));
  EXPECT_TRUE(heap.Insert(&bulk, std::string(kPageSize, 'x'))
                  .status()
                  .IsInvalidArgument());
  // The largest record that fits exactly.
  const uint32_t max = kPagePayloadSize - HeapPageLayout::kHeaderSize -
                       HeapPageLayout::kSlotSize;
  FACE_ASSERT_OK(heap.Insert(&bulk, std::string(max, 'y')).status());
}

TEST_F(HeapTest, OpenFindsExistingHeap) {
  PageWriter bulk;
  Rid rid;
  {
    FACE_ASSERT_OK_AND_ASSIGN(
        HeapFile heap,
        HeapFile::Create(db_->pool(), db_->catalog(), &bulk, "persisted"));
    FACE_ASSERT_OK_AND_ASSIGN(rid, heap.Insert(&bulk, "still here"));
  }
  FACE_ASSERT_OK_AND_ASSIGN(
      HeapFile heap, HeapFile::Open(db_->pool(), db_->catalog(), "persisted"));
  std::string out;
  FACE_ASSERT_OK(heap.Read(rid, &out));
  EXPECT_EQ(out, "still here");
  EXPECT_TRUE(
      HeapFile::Open(db_->pool(), db_->catalog(), "nope").status().IsNotFound());
}

TEST_F(HeapTest, LoggedInsertIsUndoneByAbort) {
  const TxnId setup = db_->Begin();
  PageWriter setup_writer = db_->Writer(setup);
  FACE_ASSERT_OK_AND_ASSIGN(
      HeapFile heap,
      HeapFile::Create(db_->pool(), db_->catalog(), &setup_writer, "t"));
  FACE_ASSERT_OK(db_->Commit(setup));

  const TxnId txn = db_->Begin();
  PageWriter w = db_->Writer(txn);
  FACE_ASSERT_OK_AND_ASSIGN(Rid rid, heap.Insert(&w, "ghost row"));
  FACE_ASSERT_OK(db_->Abort(txn));
  std::string out;
  EXPECT_TRUE(heap.Read(rid, &out).IsNotFound());
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t rows, heap.CountRows());
  EXPECT_EQ(rows, 0u);
}

// Property sweep: the page never corrupts across mixed workloads of varying
// record sizes.
class HeapPageProperty : public EngineFixture,
                         public ::testing::WithParamInterface<uint32_t> {
 protected:
  void SetUp() override { Init(); }
};

TEST_P(HeapPageProperty, MixedInsertDeleteNeverCorrupts) {
  PageWriter bulk;
  FACE_ASSERT_OK_AND_ASSIGN(
      HeapFile heap, HeapFile::Create(db_->pool(), db_->catalog(), &bulk, "t"));
  Random rnd(GetParam());
  std::map<std::pair<PageId, uint16_t>, std::string> live;
  for (int op = 0; op < 500; ++op) {
    if (live.empty() || rnd.PercentTrue(60)) {
      std::string rec = rnd.AlphaString(1, 300);
      FACE_ASSERT_OK_AND_ASSIGN(Rid rid, heap.Insert(&bulk, rec));
      live[{rid.page_id, rid.slot}] = rec;
    } else {
      auto it = live.begin();
      std::advance(it, rnd.Uniform(live.size()));
      FACE_ASSERT_OK(heap.Delete(&bulk, {it->first.first, it->first.second}));
      live.erase(it);
    }
  }
  // Every live record reads back exactly; every dead one is NotFound.
  for (const auto& [key, rec] : live) {
    std::string out;
    FACE_ASSERT_OK(heap.Read({key.first, key.second}, &out));
    EXPECT_EQ(out, rec);
  }
  FACE_ASSERT_OK_AND_ASSIGN(uint64_t rows, heap.CountRows());
  EXPECT_EQ(rows, live.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapPageProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace face
