// Unit tests: page layout (checksums, header fields), DbStorage (page
// mapping, allocator, corruption detection).
#include <gtest/gtest.h>

#include <string>

#include "sim/sim_device.h"
#include "storage/db_storage.h"
#include "storage/page.h"
#include "tests/test_util.h"

namespace face {
namespace {

TEST(PageViewTest, HeaderRoundTrip) {
  std::string page(kPageSize, '\0');
  PageView v(page.data());
  v.Format(77);
  EXPECT_EQ(v.page_id(), 77u);
  EXPECT_EQ(v.lsn(), 0u);
  v.set_lsn(123456);
  EXPECT_EQ(v.lsn(), 123456u);
  v.set_flags(0xA5A5);
  EXPECT_EQ(v.flags(), 0xA5A5u);
}

TEST(PageViewTest, ChecksumCoversWholePage) {
  std::string page(kPageSize, '\0');
  PageView v(page.data());
  v.Format(1);
  page[kPageHeaderSize + 100] = 'x';
  v.StampChecksum();
  EXPECT_TRUE(v.VerifyChecksum());
  // Any payload flip breaks it.
  page[kPageSize - 1] ^= 1;
  EXPECT_FALSE(v.VerifyChecksum());
  page[kPageSize - 1] ^= 1;
  EXPECT_TRUE(v.VerifyChecksum());
  // Header flips break it too.
  v.set_lsn(v.lsn() + 1);
  EXPECT_FALSE(v.VerifyChecksum());
}

TEST(PageViewTest, AllZeroPageFailsVerification) {
  std::string page(kPageSize, '\0');
  EXPECT_FALSE(ConstPageView(page.data()).VerifyChecksum());
}

TEST(DbStorageTest, WriteStampsAndReadVerifies) {
  SimDevice dev("db", DeviceProfile::Seagate15k(), 256);
  DbStorage storage(&dev);
  FACE_ASSERT_OK_AND_ASSIGN(PageId p, storage.AllocatePage());
  EXPECT_EQ(p, 0u);

  std::string page(kPageSize, '\0');
  PageView v(page.data());
  v.Format(p);
  memcpy(v.payload(), "hello", 5);
  FACE_ASSERT_OK(storage.WritePage(p, page.data()));

  std::string out(kPageSize, '\0');
  FACE_ASSERT_OK(storage.ReadPage(p, out.data()));
  EXPECT_EQ(memcmp(out.data() + kPageHeaderSize, "hello", 5), 0);
}

TEST(DbStorageTest, VirginPageIsNotFound) {
  SimDevice dev("db", DeviceProfile::Seagate15k(), 256);
  DbStorage storage(&dev);
  std::string out(kPageSize, '\0');
  EXPECT_TRUE(storage.ReadPage(5, out.data()).IsNotFound());
}

TEST(DbStorageTest, DetectsBitRot) {
  SimDevice dev("db", DeviceProfile::Seagate15k(), 256);
  DbStorage storage(&dev);
  std::string page(kPageSize, '\0');
  PageView(page.data()).Format(3);
  FACE_ASSERT_OK(storage.WritePage(3, page.data()));
  // Flip one payload byte directly on the device.
  std::string raw(kPageSize, '\0');
  FACE_ASSERT_OK(dev.Read(3, raw.data()));
  raw[kPageHeaderSize + 9] ^= 0x40;
  FACE_ASSERT_OK(dev.Write(3, raw.data()));
  std::string out(kPageSize, '\0');
  EXPECT_TRUE(storage.ReadPage(3, out.data()).IsCorruption());
}

TEST(DbStorageTest, DetectsMisdirectedWrite) {
  SimDevice dev("db", DeviceProfile::Seagate15k(), 256);
  DbStorage storage(&dev);
  std::string page(kPageSize, '\0');
  PageView(page.data()).Format(3);  // claims id 3...
  FACE_ASSERT_OK(storage.WritePage(3, page.data()));
  // ...then the same bytes land on block 4 (a lost/misdirected write).
  std::string raw(kPageSize, '\0');
  FACE_ASSERT_OK(dev.Read(3, raw.data()));
  FACE_ASSERT_OK(dev.Write(4, raw.data()));
  std::string out(kPageSize, '\0');
  EXPECT_TRUE(storage.ReadPage(4, out.data()).IsCorruption());
}

TEST(DbStorageTest, AllocatorObservesAndRestores) {
  SimDevice dev("db", DeviceProfile::Seagate15k(), 256);
  DbStorage storage(&dev);
  FACE_ASSERT_OK(storage.AllocatePage().status());
  FACE_ASSERT_OK(storage.AllocatePage().status());
  EXPECT_EQ(storage.next_page_id(), 2u);
  storage.ObservePage(10);
  EXPECT_EQ(storage.next_page_id(), 11u);
  storage.ObservePage(4);  // below the mark: no change
  EXPECT_EQ(storage.next_page_id(), 11u);
  storage.ObservePage(kInvalidPageId);  // sentinel ignored
  EXPECT_EQ(storage.next_page_id(), 11u);
  storage.RestoreAllocator(100);
  FACE_ASSERT_OK_AND_ASSIGN(PageId p, storage.AllocatePage());
  EXPECT_EQ(p, 100u);
}

TEST(DbStorageTest, AllocatorExhaustsAtCapacity) {
  SimDevice dev("db", DeviceProfile::Seagate15k(), 4);
  DbStorage storage(&dev);
  for (int i = 0; i < 4; ++i) FACE_ASSERT_OK(storage.AllocatePage().status());
  EXPECT_FALSE(storage.AllocatePage().ok());
}

}  // namespace
}  // namespace face
