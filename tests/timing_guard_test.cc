// Timing-invariance differential guard for the simulator/WAL hot-path
// optimizations: the span-copy SimDevice::DoIo, the in-place WAL record
// encoding, the reusable flush block buffer, the PageMap/intrusive-LRU
// page directories, and the per-transaction WAL batch appends must not
// change a single simulated nanosecond.
//
// Fingerprint provenance: the original rows were captured from the
// pre-optimization code (commit "PR 2"). PR 5 re-captured the TPC-C rows
// once for an intentional simulated-behavior change: checkpoint and
// shutdown flushes now iterate dirty pages in sorted page order
// (deterministic across stdlib implementations, and slightly faster in
// virtual time because adjacent dirty pages coalesce into sequential
// writes). The page-differential PR re-captured once more for a second
// intentional change: small flash refreshes and checkpoint absorptions
// now travel as packed delta records instead of full 4 KB frame writes,
// which legitimately lowers flash page counts, busy time, and makespan on
// every update-heavy row (and raises Exadata's hit counts, since its
// cached copies now survive dirty DRAM evictions instead of being
// invalidated). The rows pin the shipped DeltaRingOptions defaults
// (max_chain = 16, record/chain byte caps of kPageSize/2 and kPageSize);
// retuning those knobs moves simulated numbers and needs a fresh capture.
// Rows whose runs never take the delta path ("none", the read-only
// YCSB/scan cells) still match the prior capture bit-for-bit — that is
// the invariance this guard continues to pin.
//
// The KV images here are loaded through the *incremental-insert* path on
// purpose: the sorted bulk-load path intentionally changes the physical
// page layout (leaves become device-contiguous), which legitimately moves
// simulated numbers. Bulk load is covered by the structural-equivalence
// test in btree_test.cc instead.
//
// To re-capture after an intentional simulated-behavior change:
//   TIMING_GUARD_CAPTURE=1 ./timing_guard_test
// and paste the printed rows over kGolden.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "testbed/testbed.h"
#include "tests/test_util.h"
#include "workload/scan_workload.h"
#include "workload/ycsb_workload.h"

namespace face {
namespace {

using workload::ScanHeavyFactory;
using workload::ScanHeavyOptions;
using workload::WorkloadFactory;
using workload::YcsbFactory;
using workload::YcsbOptions;

constexpr CachePolicy kPolicies[] = {
    CachePolicy::kNone, CachePolicy::kFace, CachePolicy::kFaceGSC,
    CachePolicy::kLc,   CachePolicy::kTac,  CachePolicy::kExadata,
};

/// Everything a run simulates, as exact integers. Any drift — one
/// nanosecond of makespan, one page of traffic — fails the guard.
struct Fingerprint {
  const char* workload;
  const char* policy;
  uint64_t duration;        ///< virtual makespan delta of the measured run
  uint64_t txns;
  uint64_t primary;
  uint64_t lookups;         ///< cache probes (DRAM misses)
  uint64_t hits;            ///< probes served from flash
  uint64_t db_busy;         ///< per-device virtual busy nanoseconds
  uint64_t flash_busy;
  uint64_t log_busy;
  uint64_t db_pages;        ///< pages moved (reads + writes)
  uint64_t flash_pages;
  uint64_t log_pages;
};

Fingerprint Measure(const char* workload_name, const GoldenImage& golden,
                    std::shared_ptr<const WorkloadFactory> factory,
                    CachePolicy policy, uint64_t warmup, uint64_t txns) {
  TestbedOptions opts;
  opts.policy = policy;
  opts.flash_pages = golden.db_pages() / 10;
  opts.seed = 42;
  opts.workload = std::move(factory);
  Testbed tb(opts, &golden);
  FACE_EXPECT_OK(tb.Start());
  FACE_EXPECT_OK(tb.Warmup(warmup));
  RunOptions run;
  run.txns = txns;
  run.checkpoint_interval = 3 * kNanosPerSecond;  // exercise the WAL/ckpt path
  auto result = tb.Run(run);
  FACE_EXPECT_OK(result.status());
  const RunResult& r = *result;

  Fingerprint fp;
  fp.workload = workload_name;
  fp.policy = CachePolicyName(policy);
  fp.duration = r.duration;
  fp.txns = r.txns;
  fp.primary = r.primary_txns;
  fp.lookups = r.cache_stats.lookups;
  fp.hits = r.cache_stats.hits;
  fp.db_busy = r.db_stats.busy_ns;
  fp.flash_busy = r.flash_stats.busy_ns;
  fp.log_busy = r.log_stats.busy_ns;
  fp.db_pages = r.db_stats.total_pages();
  fp.flash_pages = r.flash_stats.total_pages();
  fp.log_pages = r.log_stats.total_pages();
  return fp;
}

/// Captured from the pre-PageMap/pre-WAL-batch hot path, after the
/// deterministic checkpoint ordering landed (see file comment).
constexpr Fingerprint kGolden[] = {
    // clang-format off
    {"tpcc", "none", 25514899028, 250, 120, 7170, 0, 27267980966, 0, 766043670, 9253, 0, 779},
    {"tpcc", "FaCE", 11835656771, 250, 120, 7170, 4187, 12318038917, 247601761, 731031659, 4065, 8589, 766},
    {"tpcc", "FaCE+GSC", 10410005603, 250, 120, 7239, 4615, 10979696096, 344974133, 731031659, 3608, 15745, 766},
    {"tpcc", "LC", 12321176248, 250, 120, 7170, 4689, 12624169411, 452870023, 722285305, 4378, 9149, 763},
    {"tpcc", "TAC", 15038737344, 250, 120, 7170, 4468, 14623902582, 1329454052, 739778012, 4800, 15631, 769},
    {"tpcc", "Exadata", 14833173684, 250, 120, 7170, 4407, 14778174261, 481440907, 736862560, 4861, 7347, 768},
    {"ycsb-zipfian", "none", 552427793, 400, 400, 186, 0, 758513346, 0, 552163953, 246, 0, 232},
    {"ycsb-zipfian", "FaCE", 552427793, 400, 400, 186, 10, 580638104, 3276774, 552163953, 190, 156, 232},
    {"ycsb-zipfian", "FaCE+GSC", 552427793, 400, 400, 193, 16, 609296931, 3820016, 552163953, 199, 201, 232},
    {"ycsb-zipfian", "LC", 552427793, 400, 400, 186, 10, 583835546, 3859107, 552163953, 191, 157, 232},
    {"ycsb-zipfian", "TAC", 552973113, 400, 400, 186, 0, 758513346, 87917313, 552163953, 246, 810, 232},
    {"ycsb-zipfian", "Exadata", 552444662, 400, 400, 186, 0, 758513346, 3420652, 552163953, 246, 186, 232},
    {"scan-heavy", "none", 393697175, 50, 50, 1428, 0, 776754150, 0, 26292255, 1434, 0, 11},
    {"scan-heavy", "FaCE", 718347801, 50, 50, 1428, 100, 718158350, 29064339, 26292255, 1334, 1541, 11},
    {"scan-heavy", "FaCE+GSC", 413927319, 50, 50, 1500, 139, 749996795, 61303007, 26292255, 1368, 3440, 11},
    {"scan-heavy", "LC", 719170684, 50, 50, 1428, 109, 702293747, 62694090, 26292255, 1323, 1417, 11},
    {"scan-heavy", "TAC", 570710643, 50, 50, 1428, 89, 742908601, 204184132, 26292255, 1345, 1939, 11},
    {"scan-heavy", "Exadata", 685727192, 50, 50, 1428, 0, 776754150, 26211567, 26292255, 1434, 1428, 11},
    // clang-format on
};

std::vector<Fingerprint> MeasureAll() {
  std::vector<Fingerprint> rows;

  {  // TPC-C at 1 warehouse (the paper's workload).
    auto golden = GoldenImage::Build(1);
    FACE_EXPECT_OK(golden.status());
    for (CachePolicy policy : kPolicies) {
      rows.push_back(Measure("tpcc", *golden, /*factory=*/nullptr, policy,
                             /*warmup=*/150, /*txns=*/250));
    }
  }

  {  // YCSB-zipfian, incremental-insert load (see file comment).
    YcsbOptions yo;
    yo.records = 8000;
    yo.bulk_load = false;
    auto factory = std::make_shared<YcsbFactory>(yo);
    auto golden = GoldenImage::BuildFor(factory);
    FACE_EXPECT_OK(golden.status());
    for (CachePolicy policy : kPolicies) {
      rows.push_back(Measure("ycsb-zipfian", *golden, factory, policy,
                             /*warmup=*/250, /*txns=*/400));
    }
  }

  {  // Scan-heavy, incremental-insert load.
    ScanHeavyOptions so;
    so.records = 8000;
    so.bulk_load = false;
    auto factory = std::make_shared<ScanHeavyFactory>(so);
    auto golden = GoldenImage::BuildFor(factory);
    FACE_EXPECT_OK(golden.status());
    for (CachePolicy policy : kPolicies) {
      rows.push_back(Measure("scan-heavy", *golden, factory, policy,
                             /*warmup=*/30, /*txns=*/50));
    }
  }
  return rows;
}

TEST(TimingGuardTest, SimulatedResultsMatchPreOptimizationGolden) {
  const std::vector<Fingerprint> rows = MeasureAll();

  if (getenv("TIMING_GUARD_CAPTURE") != nullptr) {
    for (const Fingerprint& f : rows) {
      printf("    {\"%s\", \"%s\", %" PRIu64 ", %" PRIu64 ", %" PRIu64
             ", %" PRIu64 ", %" PRIu64 ", %" PRIu64 ", %" PRIu64 ", %" PRIu64
             ", %" PRIu64 ", %" PRIu64 ", %" PRIu64 "},\n",
             f.workload, f.policy, f.duration, f.txns, f.primary, f.lookups,
             f.hits, f.db_busy, f.flash_busy, f.log_busy, f.db_pages,
             f.flash_pages, f.log_pages);
    }
    GTEST_SKIP() << "capture mode: golden rows printed, nothing asserted";
  }

  ASSERT_EQ(rows.size(), sizeof(kGolden) / sizeof(kGolden[0]));
  for (size_t i = 0; i < rows.size(); ++i) {
    const Fingerprint& got = rows[i];
    const Fingerprint& want = kGolden[i];
    SCOPED_TRACE(std::string(want.workload) + " / " + want.policy);
    EXPECT_STREQ(got.workload, want.workload);
    EXPECT_STREQ(got.policy, want.policy);
    EXPECT_EQ(got.duration, want.duration);
    EXPECT_EQ(got.txns, want.txns);
    EXPECT_EQ(got.primary, want.primary);
    EXPECT_EQ(got.lookups, want.lookups);
    EXPECT_EQ(got.hits, want.hits);
    EXPECT_EQ(got.db_busy, want.db_busy);
    EXPECT_EQ(got.flash_busy, want.flash_busy);
    EXPECT_EQ(got.log_busy, want.log_busy);
    EXPECT_EQ(got.db_pages, want.db_pages);
    EXPECT_EQ(got.flash_pages, want.flash_pages);
    EXPECT_EQ(got.log_pages, want.log_pages);
  }
}

}  // namespace
}  // namespace face
