// End-to-end testbed tests: the full rig (golden image, clone, warmup,
// measured runs, crash, recovery) across cache policies. These are the
// system-level checks the benches rely on.
#include "testbed/testbed.h"

#include <gtest/gtest.h>

#include "core/face_cache.h"
#include "tests/test_util.h"
#include "tpcc/schema.h"

namespace face {
namespace {

TestbedOptions BaseOptions(CachePolicy policy) {
  const GoldenImage& golden = SharedGolden();
  TestbedOptions opts;
  opts.policy = policy;
  opts.flash_pages = golden.db_pages() / 10;  // 10 % of the database
  opts.clients = 8;
  return opts;
}

TEST(GoldenImageTest, BuildsPlausibleDatabase) {
  const GoldenImage& golden = SharedGolden();
  ASSERT_NE(golden.device, nullptr);
  // One warehouse: >= 100k stock + 30k customers + 30k orders + ~300k order
  // lines; with 4 KB pages that is at least 15k pages.
  EXPECT_GT(golden.db_pages(), 15000u);
  EXPECT_LT(golden.db_pages(), GoldenImage::CapacityPages(1));
}

TEST(TestbedTest, RunsTransactionsWithoutCache) {
  Testbed tb(BaseOptions(CachePolicy::kNone), &SharedGolden());
  FACE_ASSERT_OK(tb.Start());
  RunOptions run;
  run.txns = 300;
  FACE_ASSERT_OK_AND_ASSIGN(RunResult result, tb.Run(run));
  EXPECT_EQ(result.txns, 300u);
  EXPECT_GT(result.duration, 0u);
  EXPECT_GT(result.primary_txns, 60u);  // NewOrders, ~45 % of the mix
  EXPECT_GT(result.Tpm(), 0.0);
  // Without a flash cache every miss is a disk fetch.
  EXPECT_EQ(result.pool_stats.flash_fetches, 0u);
  EXPECT_GT(result.pool_stats.disk_fetches, 0u);
}

class TestbedPolicyTest : public ::testing::TestWithParam<CachePolicy> {};

TEST_P(TestbedPolicyTest, SteadyStateRunsAndHits) {
  Testbed tb(BaseOptions(GetParam()), &SharedGolden());
  FACE_ASSERT_OK(tb.Start());
  FACE_ASSERT_OK(tb.Warmup(600));
  RunOptions run;
  run.txns = 400;
  FACE_ASSERT_OK_AND_ASSIGN(RunResult result, tb.Run(run));
  EXPECT_EQ(result.txns, 400u);
  // All policies must produce flash hits once warmed.
  EXPECT_GT(result.cache_stats.lookups, 0u);
  EXPECT_GT(result.cache_stats.hits, 0u);
  EXPECT_GT(result.pool_stats.flash_fetches, 0u);
  FACE_EXPECT_OK(tb.cache()->CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, TestbedPolicyTest,
    ::testing::Values(CachePolicy::kFace, CachePolicy::kFaceGR,
                      CachePolicy::kFaceGSC, CachePolicy::kLc,
                      CachePolicy::kTac, CachePolicy::kExadata),
    [](const ::testing::TestParamInfo<CachePolicy>& pinfo) {
      std::string name = CachePolicyName(pinfo.param);
      for (char& c : name) {
        if (c == '+') c = '_';
      }
      return name;
    });

class TestbedRecoveryTest : public ::testing::TestWithParam<CachePolicy> {};

TEST_P(TestbedRecoveryTest, CrashRecoverResume) {
  Testbed tb(BaseOptions(GetParam()), &SharedGolden());
  FACE_ASSERT_OK(tb.Start());
  RunOptions run;
  run.txns = 400;
  run.checkpoint_interval = 5 * kNanosPerSecond;
  FACE_ASSERT_OK(tb.Run(run).status());

  FACE_ASSERT_OK(tb.InjectInflightTransactions(4));
  FACE_ASSERT_OK(tb.Crash());
  FACE_ASSERT_OK_AND_ASSIGN(RestartReport report, tb.Recover());
  EXPECT_EQ(report.losers, 4u);
  EXPECT_GT(report.total_ns, 0u);

  // The system must keep working after recovery.
  RunOptions after;
  after.txns = 200;
  FACE_ASSERT_OK_AND_ASSIGN(RunResult result, tb.Run(after));
  EXPECT_EQ(result.txns, 200u);
  FACE_EXPECT_OK(tb.cache()->CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, TestbedRecoveryTest,
    ::testing::Values(CachePolicy::kNone, CachePolicy::kFaceGSC,
                      CachePolicy::kLc),
    [](const ::testing::TestParamInfo<CachePolicy>& pinfo) {
      std::string name = CachePolicyName(pinfo.param);
      for (char& c : name) {
        if (c == '+') c = '_';
      }
      return name;
    });

TEST(TestbedTest, FaceRecoveryFetchesMostPagesFromFlash) {
  Testbed tb(BaseOptions(CachePolicy::kFaceGSC), &SharedGolden());
  FACE_ASSERT_OK(tb.Start());
  FACE_ASSERT_OK(tb.Warmup(1500));
  RunOptions run;
  run.txns = 800;
  run.checkpoint_interval = 5 * kNanosPerSecond;
  FACE_ASSERT_OK(tb.Run(run).status());
  FACE_ASSERT_OK(tb.InjectInflightTransactions(8));
  FACE_ASSERT_OK(tb.Crash());
  FACE_ASSERT_OK_AND_ASSIGN(RestartReport report, tb.Recover());
  // Paper §5.5: >98 % of recovery fetches come from the flash cache. That
  // number needs production scale (50 GB database, hours of warmup); at
  // test scale require a solid plurality and let bench_table6 report the
  // full-scale fraction.
  if (report.pages_fetched > 20) {
    EXPECT_GT(report.FlashFetchFraction(), 0.4)
        << "flash=" << report.pages_from_flash
        << " disk=" << report.pages_from_disk;
  }
}

TEST(TestbedTest, CrashLosesNothingCommitted) {
  // Run a batch, remember one customer's balance committed by Payment-like
  // updates, crash, recover, and verify the balance survived.
  Testbed tb(BaseOptions(CachePolicy::kFaceGSC), &SharedGolden());
  FACE_ASSERT_OK(tb.Start());
  RunOptions run;
  run.txns = 150;
  FACE_ASSERT_OK(tb.Run(run).status());

  // Commit a recognizable update.
  Database* db = tb.db();
  const TxnId txn = db->Begin();
  PageWriter w = db->Writer(txn);
  std::string value, row;
  FACE_ASSERT_OK(
      tb.tables()->pk_customer.Get(tpcc::CustomerKey(1, 1, 1), &value));
  const Rid rid = tpcc::DecodeRid(value);
  FACE_ASSERT_OK(tb.tables()->customer.Read(rid, &row));
  tpcc::CustomerRow customer = tpcc::CustomerRow::Decode(row);
  customer.c_balance = 987654321;
  FACE_ASSERT_OK(tb.tables()->customer.Update(&w, rid, customer.Encode()));
  FACE_ASSERT_OK(db->Commit(txn));

  FACE_ASSERT_OK(tb.Crash());
  FACE_ASSERT_OK(tb.Recover().status());

  FACE_ASSERT_OK(
      tb.tables()->pk_customer.Get(tpcc::CustomerKey(1, 1, 1), &value));
  FACE_ASSERT_OK(tb.tables()->customer.Read(tpcc::DecodeRid(value), &row));
  EXPECT_EQ(tpcc::CustomerRow::Decode(row).c_balance, 987654321);
}

TEST(TestbedTest, UncommittedWorkIsRolledBack) {
  Testbed tb(BaseOptions(CachePolicy::kFaceGSC), &SharedGolden());
  FACE_ASSERT_OK(tb.Start());

  std::string value, row;
  FACE_ASSERT_OK(
      tb.tables()->pk_customer.Get(tpcc::CustomerKey(1, 2, 7), &value));
  const Rid rid = tpcc::DecodeRid(value);
  FACE_ASSERT_OK(tb.tables()->customer.Read(rid, &row));
  const int64_t balance_before = tpcc::CustomerRow::Decode(row).c_balance;

  // Uncommitted update, then force it through to persistent storage via a
  // checkpoint (steal), then crash: undo must restore the old balance.
  Database* db = tb.db();
  const TxnId txn = db->Begin();
  PageWriter w = db->Writer(txn);
  tpcc::CustomerRow customer = tpcc::CustomerRow::Decode(row);
  customer.c_balance = -42424242;
  FACE_ASSERT_OK(tb.tables()->customer.Update(&w, rid, customer.Encode()));
  FACE_ASSERT_OK(db->TakeCheckpoint().status());

  FACE_ASSERT_OK(tb.Crash());
  FACE_ASSERT_OK_AND_ASSIGN(RestartReport report, tb.Recover());
  EXPECT_EQ(report.losers, 1u);

  FACE_ASSERT_OK(tb.tables()->customer.Read(rid, &row));
  EXPECT_EQ(tpcc::CustomerRow::Decode(row).c_balance, balance_before);
}

TEST(TestbedTest, RepeatedCrashesConverge) {
  Testbed tb(BaseOptions(CachePolicy::kFaceGSC), &SharedGolden());
  FACE_ASSERT_OK(tb.Start());
  for (int round = 0; round < 3; ++round) {
    RunOptions run;
    run.txns = 120;
    run.checkpoint_interval = 5 * kNanosPerSecond;
    FACE_ASSERT_OK(tb.Run(run).status());
    FACE_ASSERT_OK(tb.InjectInflightTransactions(2));
    FACE_ASSERT_OK(tb.Crash());
    FACE_ASSERT_OK(tb.Recover().status());
  }
  RunOptions final_run;
  final_run.txns = 100;
  FACE_ASSERT_OK_AND_ASSIGN(RunResult result, tb.Run(final_run));
  EXPECT_EQ(result.txns, 100u);
}

}  // namespace
}  // namespace face
